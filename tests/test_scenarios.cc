/**
 * @file
 * Tests for the adversarial scenario library (trace/scenarios.hh):
 * registry invariants, per-scenario stream character (each scenario
 * must actually exhibit the stress it advertises), PhasedTrace
 * semantics, the `phased:` dynamic form, and the bench-token
 * resolver behind `bench=scenario:...` / `bench=trace:...`.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/file_trace.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"
#include "trace_test_util.hh"

namespace
{

using namespace diq;
using namespace diq::trace;

std::vector<MicroOp>
drain(TraceSource &src, size_t n)
{
    std::vector<MicroOp> ops;
    ops.reserve(n);
    MicroOp op;
    for (size_t i = 0; i < n && src.next(op); ++i)
        ops.push_back(op);
    return ops;
}

double
fractionOf(const std::vector<MicroOp> &ops, bool (*pred)(const MicroOp &))
{
    size_t hits = 0;
    for (const auto &op : ops)
        hits += pred(op) ? 1 : 0;
    return ops.empty() ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(ops.size());
}

// --- Registry invariants --------------------------------------------

TEST(ScenarioRegistry, HasAtLeastEightUniquelyNamedScenarios)
{
    const auto &reg = scenarioRegistry();
    EXPECT_GE(reg.size(), 8u);
    std::set<std::string> names;
    for (const auto &s : reg) {
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
        EXPECT_FALSE(s.doc.empty()) << s.name;
        EXPECT_NE(s.make, nullptr) << s.name;
        EXPECT_EQ(findScenario(s.name), &s);
        // Scenario names must not shadow benchmark profiles.
        EXPECT_THROW(specProfile(s.name), std::out_of_range) << s.name;
    }
    EXPECT_EQ(findScenario("nonesuch"), nullptr);
}

TEST(ScenarioRegistry, EveryScenarioConstructsStreamsAndResets)
{
    for (const auto &s : scenarioRegistry()) {
        auto w = s.make();
        ASSERT_NE(w, nullptr) << s.name;
        EXPECT_EQ(w->name(), s.name);

        auto first = drain(*w, 3000);
        ASSERT_EQ(first.size(), 3000u) << s.name << " ended early";
        for (const auto &op : first)
            ASSERT_LT(static_cast<int>(op.op),
                      static_cast<int>(OpClass::NumOpClasses))
                << s.name;

        // Reset replays the identical stream (contract shared with
        // every TraceSource; asserted per scenario because phased
        // compositions have their own reset path).
        w->reset();
        auto second = drain(*w, 3000);
        ASSERT_EQ(second.size(), first.size()) << s.name;
        for (size_t i = 0; i < first.size(); ++i) {
            ASSERT_EQ(first[i].pc, second[i].pc) << s.name << " op " << i;
            ASSERT_EQ(first[i].op, second[i].op) << s.name;
            ASSERT_EQ(first[i].memAddr, second[i].memAddr) << s.name;
            ASSERT_EQ(first[i].taken, second[i].taken) << s.name;
        }

        // Two independent instances agree (seeding is name-derived,
        // not global).
        auto w2 = s.make();
        auto other = drain(*w2, 500);
        for (size_t i = 0; i < other.size(); ++i)
            ASSERT_EQ(first[i].pc, other[i].pc) << s.name;
    }
}

// --- Per-scenario stream character ----------------------------------

TEST(ScenarioCharacter, ChainStormIsSerial)
{
    auto w = makeScenario("chain_storm");
    auto ops = drain(*w, 5000);
    // The defining property: almost every op's first source is the
    // previous op's destination — one chain, no slack for steering.
    size_t chained = 0;
    for (size_t i = 1; i < ops.size(); ++i)
        if (ops[i].src1 != NoReg && ops[i].src1 == ops[i - 1].dest)
            ++chained;
    EXPECT_GT(static_cast<double>(chained) /
                  static_cast<double>(ops.size()),
              0.75);
}

TEST(ScenarioCharacter, SteerFlipAlternatesDdgWidth)
{
    auto w = makeScenario("steer_flip");
    auto ops = drain(*w, 12000);
    // Distinct PCs per 3000-op phase window differ strongly between
    // the narrow and wide halves (the wide body is much larger).
    std::vector<size_t> footprint;
    for (size_t base = 0; base + 3000 <= ops.size(); base += 3000) {
        std::set<uint64_t> pcs;
        for (size_t i = base; i < base + 3000; ++i)
            pcs.insert(ops[i].pc);
        footprint.push_back(pcs.size());
    }
    ASSERT_GE(footprint.size(), 4u);
    EXPECT_GT(footprint[1], footprint[0] * 2) << "wide vs narrow body";
    EXPECT_GT(footprint[3], footprint[2] * 2) << "alternation persists";
}

TEST(ScenarioCharacter, BranchChurnBranchesAreUnpredictable)
{
    auto w = makeScenario("branch_churn");
    auto ops = drain(*w, 20000);
    size_t branches = 0, taken = 0, cond = 0, condTaken = 0;
    for (const auto &op : ops) {
        if (!op.isBranch())
            continue;
        ++branches;
        taken += op.taken;
        if (op.target > op.pc) { // forward = the data-dependent ones
            ++cond;
            condTaken += op.taken;
        }
    }
    EXPECT_GT(fractionOf(ops, +[](const MicroOp &op) {
                  return op.isBranch();
              }),
              0.2)
        << "branch storm must be branch-dense";
    ASSERT_GT(cond, 1000u);
    double bias = static_cast<double>(condTaken) /
                  static_cast<double>(cond);
    EXPECT_GT(bias, 0.4);
    EXPECT_LT(bias, 0.6) << "coin-flip branches";
}

TEST(ScenarioCharacter, LsqPressureAndStoreStormAreMemoryDense)
{
    auto lsq = makeScenario("lsq_pressure");
    auto lsqOps = drain(*lsq, 10000);
    EXPECT_GT(fractionOf(lsqOps, +[](const MicroOp &op) {
                  return op.isMem();
              }),
              0.3);

    auto storm = makeScenario("store_storm");
    auto stormOps = drain(*storm, 10000);
    double stores = fractionOf(stormOps, +[](const MicroOp &op) {
        return op.isStore();
    });
    double loads = fractionOf(stormOps, +[](const MicroOp &op) {
        return op.isLoad();
    });
    EXPECT_GT(stores, 3 * loads) << "stores must dominate loads";
}

TEST(ScenarioCharacter, IcacheWalkTouchesAHugeCodeFootprint)
{
    auto w = makeScenario("icache_walk");
    auto wide = drain(*w, 30000);
    std::set<uint64_t> pcs;
    for (const auto &op : wide)
        pcs.insert(op.pc);
    auto swim = makeSpecWorkload("swim");
    auto swimOps = drain(*swim, 30000);
    std::set<uint64_t> swimPcs;
    for (const auto &op : swimOps)
        swimPcs.insert(op.pc);
    EXPECT_GT(pcs.size(), 10 * swimPcs.size());
}

TEST(ScenarioCharacter, FpFloodAndDivWallAreFpHeavy)
{
    for (const char *name : {"fp_flood", "div_wall"}) {
        auto w = makeScenario(name);
        auto ops = drain(*w, 10000);
        EXPECT_GT(fractionOf(ops, +[](const MicroOp &op) {
                      return op.isFpPipe();
                  }),
                  0.3)
            << name;
    }
    auto w = makeScenario("div_wall");
    auto ops = drain(*w, 10000);
    EXPECT_GT(fractionOf(ops, +[](const MicroOp &op) {
                  return op.op == OpClass::FpDiv;
              }),
              0.1);
}

TEST(ScenarioCharacter, BurstyAlternatesOpMix)
{
    auto w = makeScenario("bursty");
    auto ops = drain(*w, 6000);
    // Divide density flips between consecutive 1500-op phases.
    std::vector<double> divFrac;
    for (size_t base = 0; base + 1500 <= ops.size(); base += 1500) {
        size_t divs = 0;
        for (size_t i = base; i < base + 1500; ++i)
            divs += ops[i].op == OpClass::IntDiv ? 1 : 0;
        divFrac.push_back(static_cast<double>(divs) / 1500.0);
    }
    ASSERT_GE(divFrac.size(), 4u);
    EXPECT_LT(divFrac[0], 0.01) << "dense phase has no divides";
    EXPECT_GT(divFrac[1], 0.1) << "stall phase is divide-bound";
    EXPECT_LT(divFrac[2], 0.01);
    EXPECT_GT(divFrac[3], 0.1);
}

// --- PhasedTrace ----------------------------------------------------

TEST(PhasedTrace, SwitchesAtExactBoundariesRoundRobin)
{
    // Two distinguishable vector phases: PCs 0x1000 vs 0x2000.
    auto mk = [](uint64_t pc) {
        std::vector<MicroOp> ops(10);
        for (auto &op : ops)
            op.pc = pc;
        return std::make_unique<VectorTrace>(ops, "p", /*repeat=*/true);
    };
    std::vector<std::unique_ptr<TraceSource>> phases;
    phases.push_back(mk(0x1000));
    phases.push_back(mk(0x2000));
    PhasedTrace t(std::move(phases), 4, "pp");
    EXPECT_EQ(t.phaseCount(), 2u);
    EXPECT_EQ(t.opsPerPhase(), 4u);

    MicroOp op;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(t.next(op));
            EXPECT_EQ(op.pc, 0x1000u) << round << "." << i;
        }
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(t.next(op));
            EXPECT_EQ(op.pc, 0x2000u) << round << "." << i;
        }
    }
}

TEST(PhasedTrace, PhasesResumeWhereTheyLeftOff)
{
    std::vector<MicroOp> numbered(10);
    for (size_t i = 0; i < numbered.size(); ++i)
        numbered[i].pc = i;
    std::vector<std::unique_ptr<TraceSource>> phases;
    phases.push_back(
        std::make_unique<VectorTrace>(numbered, "a", /*repeat=*/true));
    phases.push_back(
        std::make_unique<VectorTrace>(numbered, "b", /*repeat=*/true));
    PhasedTrace t(std::move(phases), 3, "resume");
    MicroOp op;
    // Phase a: 0,1,2; phase b: 0,1,2; phase a resumes at 3.
    for (uint64_t want : {0u, 1u, 2u, 0u, 1u, 2u, 3u, 4u, 5u}) {
        ASSERT_TRUE(t.next(op));
        EXPECT_EQ(op.pc, want);
    }
}

TEST(PhasedTrace, EosOfActivePhaseEndsTheStream)
{
    std::vector<MicroOp> five(5);
    std::vector<std::unique_ptr<TraceSource>> phases;
    phases.push_back(std::make_unique<VectorTrace>(five, "a"));
    phases.push_back(std::make_unique<VectorTrace>(five, "b"));
    PhasedTrace t(std::move(phases), 4, "finite");
    MicroOp op;
    // a:4, b:4, a:1 then a is exhausted mid-phase.
    for (int i = 0; i < 9; ++i)
        ASSERT_TRUE(t.next(op)) << i;
    EXPECT_FALSE(t.next(op));
    // Reset restores the full composite stream.
    t.reset();
    for (int i = 0; i < 9; ++i)
        ASSERT_TRUE(t.next(op)) << i;
    EXPECT_FALSE(t.next(op));
}

TEST(PhasedTrace, RejectsDegenerateConstruction)
{
    std::vector<std::unique_ptr<TraceSource>> none;
    EXPECT_THROW(PhasedTrace(std::move(none), 5, "x"),
                 std::invalid_argument);
    std::vector<std::unique_ptr<TraceSource>> one;
    one.push_back(std::make_unique<VectorTrace>(std::vector<MicroOp>(3),
                                                "a"));
    EXPECT_THROW(PhasedTrace(std::move(one), 0, "x"),
                 std::invalid_argument);
}

// --- The phased: dynamic form ---------------------------------------

TEST(PhasedForm, ComposesProfilesAndScenarios)
{
    auto w = makeScenario("phased:gcc+swim@100");
    auto *p = dynamic_cast<PhasedTrace *>(w.get());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->phaseCount(), 2u);
    EXPECT_EQ(p->opsPerPhase(), 100u);
    EXPECT_EQ(w->name(), "phased:gcc+swim@100");

    // The first 100 ops are gcc's, the next 100 swim's.
    auto gcc = makeSpecWorkload("gcc");
    auto swim = makeSpecWorkload("swim");
    MicroOp a, b;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(w->next(a));
        ASSERT_TRUE(gcc->next(b));
        ASSERT_EQ(a.pc, b.pc) << i;
    }
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(w->next(a));
        ASSERT_TRUE(swim->next(b));
        ASSERT_EQ(a.pc, b.pc) << i;
    }

    // Registry scenarios can be phases too.
    auto mixed = makeScenario("phased:chain_storm+fp_flood+gcc@50");
    ASSERT_NE(dynamic_cast<PhasedTrace *>(mixed.get()), nullptr);
}

TEST(PhasedForm, PreciseSyntaxErrors)
{
    auto expectBad = [](const std::string &name,
                        const std::string &needle) {
        try {
            validateScenario(name);
            FAIL() << "no error for " << name;
        } catch (const std::invalid_argument &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "'" << e.what() << "' lacks '" << needle << "'";
        }
    };
    expectBad("phased:gcc+swim", "missing '@");
    expectBad("phased:gcc+swim@", "not a valid ops-per-phase");
    expectBad("phased:gcc+swim@abc", "not a valid ops-per-phase");
    expectBad("phased:gcc+swim@12x", "not a valid ops-per-phase");
    expectBad("phased:gcc+swim@0", "must be positive");
    // stoull would silently wrap a leading '-' to a huge count.
    expectBad("phased:gcc+swim@-1", "not a valid ops-per-phase");
    expectBad("phased:gcc+swim@+5", "not a valid ops-per-phase");
    expectBad("phased:gcc@100", "at least two");
    expectBad("phased:gcc+doom3@100", "unknown phase 'doom3'");
    expectBad("warp_storm", "unknown scenario 'warp_storm'");
    // validateScenario never instantiates; makeScenario throws the
    // same errors when asked to build.
    EXPECT_THROW(makeScenario("phased:gcc+swim"),
                 std::invalid_argument);
    EXPECT_THROW(makeScenario("warp_storm"), std::invalid_argument);
}

// --- The bench-token resolver ---------------------------------------

TEST(WorkloadResolver, DispatchesOnPrefix)
{
    EXPECT_FALSE(isWorkloadToken("swim"));
    EXPECT_TRUE(isWorkloadToken("scenario:chain_storm"));
    EXPECT_TRUE(isWorkloadToken("trace:/tmp/x.diqt"));

    auto plain = makeWorkload("swim");
    EXPECT_EQ(plain->name(), "swim");
    auto scen = makeWorkload("scenario:chain_storm");
    EXPECT_EQ(scen->name(), "chain_storm");

    // trace: round-trips through a real recording.
    auto live = makeSpecWorkload("swim");
    std::string path = trace::test::tempPath("resolver.diqt");
    recordTrace(*live, path, 64);
    auto replay = makeWorkload("trace:" + path);
    EXPECT_EQ(replay->name(), "swim");
    auto *file = dynamic_cast<FileTrace *>(replay.get());
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->opCount(), 64u);

    EXPECT_THROW(makeWorkload("doom3"), std::out_of_range);
    EXPECT_THROW(makeWorkload("scenario:doom3"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("trace:/nonexistent.diqt"), TraceError);
}

TEST(WorkloadResolver, ProfilePlaceholdersCarryTheToken)
{
    EXPECT_EQ(workloadProfile("swim").name, "swim");
    EXPECT_TRUE(workloadProfile("swim").isFp);
    EXPECT_EQ(workloadProfile("scenario:bursty").name,
              "scenario:bursty");
    EXPECT_EQ(workloadProfile("trace:x.diqt").name, "trace:x.diqt");
    EXPECT_THROW(workloadProfile("doom3"), std::out_of_range);
    // Scenario tokens validate at profile-resolution (job/grid build)
    // time even when exp.benchmark is assigned directly, bypassing
    // the spec setter; trace paths stay lazy.
    EXPECT_THROW(workloadProfile("scenario:doom3"),
                 std::invalid_argument);
    EXPECT_THROW(workloadProfile("scenario:phased:gcc+swim"),
                 std::invalid_argument);
    EXPECT_NO_THROW(workloadProfile("trace:not/recorded/yet.diqt"));
}

} // namespace

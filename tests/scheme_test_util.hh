/**
 * @file
 * Shared helpers for driving issue schemes directly in unit tests:
 * a miniature machine (instruction pool + scoreboard + FU pool +
 * counters) and DynInst factories. Instructions live in a
 * core::InstPool, as in the real pipeline; the helpers still hand out
 * DynInst pointers (stable — the slab never reallocates) so tests can
 * compare identities.
 */

#ifndef DIQ_TESTS_SCHEME_TEST_UTIL_HH
#define DIQ_TESTS_SCHEME_TEST_UTIL_HH

#include <vector>

#include "core/inst_pool.hh"
#include "core/issue_scheme.hh"

namespace diq::test
{

/** A standalone issue environment for scheme unit tests. */
struct MiniMachine
{
    core::InstPool pool{320};
    core::Scoreboard scoreboard{320};
    core::FuPool fus{core::FuPoolConfig{}};
    power::EventCounters counters;
    uint64_t cycle = 0;

    explicit MiniMachine(core::FuPoolConfig fu_cfg = core::FuPoolConfig{})
        : fus(fu_cfg)
    {
    }

    core::IssueContext
    ctx()
    {
        core::IssueContext c;
        c.cycle = cycle;
        c.scoreboard = &scoreboard;
        c.fus = &fus;
        c.counters = &counters;
        c.pool = &pool;
        return c;
    }

    /**
     * Build an instruction with identity logical->physical renaming
     * (logical register r maps to physical r; FP ids already offset).
     */
    core::DynInst *
    make(trace::OpClass op, int dest, int src1, int src2, uint64_t seq)
    {
        trace::MicroOp mop;
        mop.op = op;
        mop.dest = static_cast<int8_t>(dest);
        mop.src1 = static_cast<int8_t>(src1);
        mop.src2 = static_cast<int8_t>(src2);
        mop.pc = 0x1000 + seq * 4;
        core::InstIdx idx = pool.alloc(mop, seq);
        core::DynInst &inst = pool.get(idx);
        inst.pdest = dest;
        inst.psrc1 = src1;
        inst.psrc2 = src2;
        if (dest >= 0)
            scoreboard.markPending(dest);
        return &inst;
    }

    /** Advance one cycle and run the scheme's issue stage. */
    std::vector<core::DynInst *>
    step(core::IssueScheme &scheme)
    {
        scheme.bindScoreboard(scoreboard); // idempotent
        ++cycle;
        scoreboard.syncTo(cycle);
        auto c = ctx();
        std::vector<core::InstIdx> issued;
        scheme.issue(c, issued);
        // Model the pipeline's completion scheduling for fixed-latency
        // ops so dependents wake up.
        std::vector<core::DynInst *> out;
        out.reserve(issued.size());
        for (core::InstIdx idx : issued) {
            core::DynInst &inst = pool.get(idx);
            if (inst.hasDest() && !inst.op.isMem()) {
                scoreboard.setReadyAt(
                    inst.pdest,
                    cycle + static_cast<uint64_t>(
                                trace::opLatency(inst.op.op)));
            }
            out.push_back(&inst);
        }
        return out;
    }

    /** Dispatch through the scheme (asserts acceptance). */
    bool
    dispatch(core::IssueScheme &scheme, core::DynInst *inst)
    {
        scheme.bindScoreboard(scoreboard); // idempotent
        auto c = ctx();
        if (!scheme.canDispatch(*inst, c))
            return false;
        scheme.dispatch(pool.indexOf(*inst), c);
        return true;
    }
};

} // namespace diq::test

#endif // DIQ_TESTS_SCHEME_TEST_UTIL_HH

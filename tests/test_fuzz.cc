/**
 * @file
 * Tests for src/fuzz: the generative fuzz: workload space, the
 * differential scheme checker, and the trace shrinker
 * (docs/ARCHITECTURE.md §9).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fuzz/differential.hh"
#include "fuzz/fuzz_runner.hh"
#include "fuzz/fuzz_workload.hh"
#include "fuzz/shrink.hh"
#include "spec/experiment_spec.hh"
#include "trace/scenarios.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace diq;
using trace::MicroOp;
using trace::OpClass;

std::vector<MicroOp>
drain(trace::TraceSource &src, size_t count)
{
    std::vector<MicroOp> ops;
    MicroOp op;
    while (ops.size() < count && src.next(op))
        ops.push_back(op);
    return ops;
}

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.pc == b.pc && a.op == b.op && a.src1 == b.src1 &&
           a.src2 == b.src2 && a.dest == b.dest &&
           a.memAddr == b.memAddr && a.memSize == b.memSize &&
           a.taken == b.taken && a.target == b.target;
}

// --- Token grammar ------------------------------------------------------

TEST(FuzzToken, ParseAndCanonicalRoundTrip)
{
    auto s = fuzz::FuzzSpec::parse("fuzz:7");
    EXPECT_EQ(s.seed, 7u);
    EXPECT_EQ(s.phases, 0);
    EXPECT_EQ(s.opsPerPhase, 0u);
    EXPECT_EQ(s.canonical(), "fuzz:7");

    // Knobs canonicalize into grammar order, whatever order they came.
    auto k = fuzz::FuzzSpec::parse("fuzz:7:ops=100:phases=2");
    EXPECT_EQ(k.phases, 2);
    EXPECT_EQ(k.opsPerPhase, 100u);
    EXPECT_EQ(k.canonical(), "fuzz:7:phases=2:ops=100");
    EXPECT_EQ(fuzz::FuzzSpec::parse(k.canonical()), k);
}

TEST(FuzzToken, RejectsMalformedTokens)
{
    for (const char *bad :
         {"fuzz:", "fuzz:abc", "fuzz:7:", "fuzz:7:phases=",
          "fuzz:7:phases=0", "fuzz:7:phases=9", "fuzz:7:ops=63",
          "fuzz:7:ops=1000001", "fuzz:7:bogus=1",
          "fuzz:7:phases=2:phases=3", "fuzz:-1"})
        EXPECT_THROW(fuzz::FuzzSpec::parse(bad),
                     std::invalid_argument)
            << bad;
}

TEST(FuzzToken, IsRecognizedAsWorkloadToken)
{
    EXPECT_TRUE(fuzz::isFuzzToken("fuzz:0"));
    EXPECT_FALSE(fuzz::isFuzzToken("swim"));
    EXPECT_FALSE(fuzz::isFuzzToken("scenario:steer_flip"));
    EXPECT_TRUE(trace::isWorkloadToken("fuzz:0"));
}

TEST(FuzzToken, SpecBenchKeyValidatesAndCanonicalizes)
{
    spec::ExperimentSpec s;
    s.set("bench", "fuzz:9:ops=128:phases=2");
    EXPECT_EQ(s.benchmark, "fuzz:9:phases=2:ops=128");

    // Round-trip through the spec's own serialization.
    auto again = spec::ExperimentSpec::parse(s.toText());
    EXPECT_EQ(again.benchmark, s.benchmark);
    EXPECT_EQ(again.canonicalLine(), s.canonicalLine());

    EXPECT_THROW(s.set("bench", "fuzz:9:phases=99"),
                 spec::ParseError);
    EXPECT_THROW(s.set("bench", "fuzz:x"), spec::ParseError);
}

// --- Phase-graph bounds -------------------------------------------------

TEST(FuzzPlan, RespectsDocumentedBounds)
{
    for (uint64_t seed = 0; seed < 200; ++seed) {
        fuzz::FuzzSpec s;
        s.seed = seed;
        auto plan = fuzz::planFuzz(s);
        ASSERT_GE(plan.profiles.size(), 1u) << seed;
        ASSERT_LE(plan.profiles.size(),
                  static_cast<size_t>(fuzz::kMaxDrawnPhases))
            << seed;
        EXPECT_EQ(plan.profiles.size(), plan.phaseSeeds.size());
        EXPECT_GE(plan.opsPerPhase, fuzz::kMinDrawnOpsPerPhase);
        EXPECT_LE(plan.opsPerPhase, fuzz::kMaxDrawnOpsPerPhase);
        for (const auto &p : plan.profiles) {
            EXPECT_GE(p.parChains, 1) << seed;
            EXPECT_LE(p.parChains * p.chainLen, 16) << seed;
            EXPECT_LE(p.loadsPerIter, 4) << seed;
            EXPECT_LE(p.storesPerIter, 4) << seed;
            EXPECT_LE(p.extraBranches, 4) << seed;
        }
    }
}

TEST(FuzzPlan, PinnedKnobsAreHonored)
{
    auto plan =
        fuzz::planFuzz(fuzz::FuzzSpec::parse("fuzz:3:phases=8:ops=64"));
    EXPECT_EQ(plan.profiles.size(), 8u);
    EXPECT_EQ(plan.opsPerPhase, 64u);
}

// --- Determinism --------------------------------------------------------

TEST(FuzzWorkload, HundredSeedsAreReproducible)
{
    // The satellite contract: same seed => byte-identical stream, from
    // a fresh instance and across reset(). 100 seeds, no exceptions.
    for (uint64_t seed = 0; seed < 100; ++seed) {
        const std::string token = "fuzz:" + std::to_string(seed);
        auto a = fuzz::makeFuzzWorkload(token);
        auto b = fuzz::makeFuzzWorkload(token);
        auto opsA = drain(*a, 512);
        auto opsB = drain(*b, 512);
        ASSERT_EQ(opsA.size(), 512u) << token;
        for (size_t i = 0; i < opsA.size(); ++i)
            ASSERT_TRUE(sameOp(opsA[i], opsB[i]))
                << token << " diverges at op " << i;

        a->reset();
        auto replay = drain(*a, 512);
        ASSERT_EQ(replay.size(), opsA.size()) << token;
        for (size_t i = 0; i < opsA.size(); ++i)
            ASSERT_TRUE(sameOp(opsA[i], replay[i]))
                << token << " reset replay diverges at op " << i;
    }
}

TEST(FuzzWorkload, DistinctSeedsDiverge)
{
    // Not a strict requirement of any one pair, but if many seeds
    // collapse to one stream the generator is broken.
    std::set<uint64_t> signatures;
    for (uint64_t seed = 0; seed < 32; ++seed) {
        auto w =
            fuzz::makeFuzzWorkload("fuzz:" + std::to_string(seed));
        auto ops = drain(*w, 64);
        uint64_t sig = 0;
        for (const auto &op : ops)
            sig = sig * 1315423911u + op.pc +
                  static_cast<uint64_t>(op.op);
        signatures.insert(sig);
    }
    EXPECT_GT(signatures.size(), 16u);
}

TEST(FuzzWorkload, NameIsCanonicalToken)
{
    auto w = fuzz::makeFuzzWorkload("fuzz:5:ops=128:phases=2");
    EXPECT_EQ(w->name(), "fuzz:5:phases=2:ops=128");
}

// --- Differential harness ----------------------------------------------

TEST(Differential, CleanSeedPassesAllInvariants)
{
    fuzz::DiffOptions opts;
    opts.warmupInsts = 100;
    opts.measureInsts = 800;
    auto report = fuzz::runDifferential("fuzz:1", opts);
    EXPECT_TRUE(report.ok()) << report.violations.size()
                             << " violations, first: "
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations[0].detail);
    // Baseline + six schemes, each with a captured retired stream.
    ASSERT_EQ(report.runs.size(),
              fuzz::defaultDiffSchemes().size() + 1);
    for (const auto &run : report.runs) {
        EXPECT_GT(run.retiredOps, 0u) << run.preset;
        EXPECT_FALSE(run.dump.empty()) << run.preset;
    }
}

TEST(Differential, ExhaustiveReplayChecksHoldOnMaterializedStream)
{
    // The finite-replay path (warm-up 0, run to drain) enables the
    // boundary-sensitive identities as well — they must all hold on a
    // healthy stream.
    auto w = fuzz::makeFuzzWorkload("fuzz:11");
    auto ops = drain(*w, 1500);
    fuzz::DiffOptions opts;
    auto report = fuzz::runDifferentialOnOps(ops, "fuzz:11", opts);
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? ""
                                      : report.violations[0].detail);
}

TEST(Differential, DumpIsByteIdenticalAcrossRuns)
{
    fuzz::DiffOptions opts;
    opts.warmupInsts = 100;
    opts.measureInsts = 600;
    auto a = fuzz::runDifferential("fuzz:2", opts);
    auto b = fuzz::runDifferential("fuzz:2", opts);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_EQ(a.runs[i].dump, b.runs[i].dump)
            << a.runs[i].preset;
}

// --- Shrinker -----------------------------------------------------------

TEST(Shrink, PlantedViolationShrinksToMinimalCore)
{
    // Plant a "violation": the stream contains an FpDiv AND a Store.
    // The minimal reproducer is exactly those two ops; the shrinker
    // must get close without knowing the structure.
    auto w = fuzz::makeFuzzWorkload("fuzz:5");
    auto ops = drain(*w, 2000);
    auto hasBoth = [](const std::vector<MicroOp> &v) {
        bool div = false, store = false;
        for (const auto &op : v) {
            div |= op.op == OpClass::FpDiv;
            store |= op.op == OpClass::Store;
        }
        return div && store;
    };
    // Make sure the planted predicate actually holds on this stream
    // (seed 5 mixes FP-divide phases and stores; if the generator
    // changes, pick another seed rather than weakening the test).
    ASSERT_TRUE(hasBoth(ops));

    fuzz::ShrinkOptions so;
    so.maxCandidates = 10000; // cheap predicate: let it finish
    auto outcome = fuzz::shrinkOps(ops, hasBoth, so);
    EXPECT_TRUE(hasBoth(outcome.ops));
    EXPECT_LE(outcome.ops.size(), 8u);
    EXPECT_GE(outcome.ops.size(), 2u);
}

TEST(Shrink, SimplifiesOpClassesWhenPossible)
{
    // A predicate that only cares about the op *count* lets every
    // division be rewritten to the cheapest class on its pipe.
    std::vector<MicroOp> ops(6);
    for (auto &op : ops)
        op.op = OpClass::IntDiv;
    auto atLeastFour = [](const std::vector<MicroOp> &v) {
        return v.size() >= 4;
    };
    auto outcome = fuzz::shrinkOps(ops, atLeastFour);
    ASSERT_EQ(outcome.ops.size(), 4u);
    for (const auto &op : outcome.ops)
        EXPECT_EQ(op.op, OpClass::IntAlu);
}

TEST(Shrink, NonReproducingInputReturnsUnchanged)
{
    std::vector<MicroOp> ops(10);
    auto never = [](const std::vector<MicroOp> &) { return false; };
    auto outcome = fuzz::shrinkOps(ops, never);
    EXPECT_EQ(outcome.ops.size(), 10u);
    EXPECT_EQ(outcome.candidatesTried, 1u);
}

TEST(Shrink, RespectsCandidateBudget)
{
    auto w = fuzz::makeFuzzWorkload("fuzz:17");
    auto ops = drain(*w, 512);
    size_t calls = 0;
    auto counting = [&calls](const std::vector<MicroOp> &) {
        ++calls;
        return true; // everything "fails": worst case for the budget
    };
    fuzz::ShrinkOptions so;
    so.maxCandidates = 40;
    auto outcome = fuzz::shrinkOps(ops, counting, so);
    EXPECT_LE(calls, 40u);
    EXPECT_EQ(outcome.candidatesTried, calls);
    EXPECT_GE(outcome.ops.size(), 1u) << "must never shrink to empty";
}

// --- Campaign runner ----------------------------------------------------

TEST(FuzzRunner, SmallCampaignIsCleanAndSummarized)
{
    fuzz::FuzzOptions opts;
    opts.seedBegin = 0;
    opts.seedEnd = 4;
    opts.warmupInsts = 100;
    opts.measureInsts = 600;
    opts.writeArtifacts = false;
    auto summary = fuzz::runFuzz(opts);
    EXPECT_EQ(summary.seedsRun, 5u);
    EXPECT_TRUE(summary.clean());
    EXPECT_FALSE(summary.timeBudgetHit);

    auto json = summary.toJson();
    EXPECT_NE(json.find("\"seeds_run\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
    EXPECT_NE(json.find("\"violations\": []"), std::string::npos);
}

TEST(FuzzRunner, RejectsEmptySeedWindow)
{
    fuzz::FuzzOptions opts;
    opts.seedBegin = 5;
    opts.seedEnd = 4;
    EXPECT_THROW(fuzz::runFuzz(opts), std::invalid_argument);
}

} // namespace

/**
 * @file
 * Property-test suite pinning the indexed-pool rework (docs/
 * ARCHITECTURE.md §10): the structural invariants of InstPool, the
 * per-scheme occupancy invariants, and the scoreboard's ready-mask
 * mirror are checked after EVERY simulated cycle of generated (fuzz)
 * workloads, across 100 seeds split over the four paper presets.
 *
 * The invariants, each implemented as a self-check that returns a
 * description of the first violation (empty string = holds):
 *
 *   - InstPool::invariantViolation — free-list conservation
 *     (live + free == capacity), no slot twice on the free ring, no
 *     slot both live and free, and the age chain a permutation of the
 *     live set in strictly increasing seq with consistent back links;
 *   - IssueScheme::invariantViolation — resident handles are live,
 *     per-cluster occupancy masks/counts agree, wait bits only on
 *     valid entries, MixBUFF chain-membership masks partition the
 *     valid set;
 *   - Scoreboard::maskConsistent — the word-wide ready bitset equals
 *     the per-register ready-cycle array at the synced cycle.
 *
 * Run under ASan+UBSan in CI (the sanitize job builds all tests), so
 * stale-handle reuse or out-of-slab indexing also surfaces here.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/inst_pool.hh"
#include "sim/pipeline.hh"
#include "trace/scenarios.hh"
#include "util/rng.hh"

namespace
{

using namespace diq;

// --- InstPool alone: random alloc/free churn --------------------------------

/**
 * Drive the pool through a random interleaving of allocations and
 * oldest-first frees (the pipeline's commit order), checking the
 * structural self-test after every operation. 100 seeds.
 */
TEST(PoolInvariants, RandomChurnKeepsPoolConsistent)
{
    for (uint64_t seed = 0; seed < 100; ++seed) {
        core::InstPool pool(48);
        util::Rng rng(seed + 1);
        std::vector<core::InstIdx> live; // oldest first
        uint64_t seq = 0;
        trace::MicroOp mop;
        mop.op = trace::OpClass::IntAlu;
        for (int step = 0; step < 400; ++step) {
            bool can_alloc = pool.freeCount() > 0;
            bool do_alloc =
                can_alloc && (live.empty() || rng.nextBool(0.55));
            if (do_alloc) {
                live.push_back(pool.alloc(mop, ++seq));
            } else if (!live.empty()) {
                pool.free(live.front());
                live.erase(live.begin());
            }
            ASSERT_EQ(pool.invariantViolation(), "")
                << "seed " << seed << " step " << step;
            ASSERT_EQ(pool.liveCount(), live.size());
        }
    }
}

/** Freed slots go to the ring tail: reuse is delayed, so a stale
 *  handle keeps pointing at a dead slot for a full ring lap instead of
 *  silently aliasing the next allocation. */
TEST(PoolInvariants, FreedSlotReuseIsDelayed)
{
    core::InstPool pool(8);
    trace::MicroOp mop;
    mop.op = trace::OpClass::IntAlu;
    core::InstIdx a = pool.alloc(mop, 1);
    pool.free(a);
    // The next 7 allocations drain the rest of the original free ring
    // before slot `a` comes around again.
    for (uint64_t s = 2; s <= 8; ++s) {
        core::InstIdx b = pool.alloc(mop, s);
        EXPECT_NE(b, a) << "freed slot reused immediately";
        EXPECT_FALSE(pool.isLive(a));
    }
    EXPECT_EQ(pool.alloc(mop, 9), a) << "slot returns after a full lap";
}

TEST(PoolInvariants, AgeChainTracksOldestAcrossFrees)
{
    core::InstPool pool(16);
    trace::MicroOp mop;
    mop.op = trace::OpClass::IntAlu;
    std::vector<core::InstIdx> idx;
    for (uint64_t s = 1; s <= 10; ++s)
        idx.push_back(pool.alloc(mop, s));
    ASSERT_EQ(pool.oldest(), idx[0]);
    ASSERT_EQ(pool.youngest(), idx[9]);
    // Free from the middle, then the head: the chain must re-link.
    pool.free(idx[4]);
    EXPECT_EQ(pool.invariantViolation(), "");
    pool.free(idx[0]);
    EXPECT_EQ(pool.oldest(), idx[1]);
    EXPECT_EQ(pool.invariantViolation(), "");
    pool.free(idx[9]);
    EXPECT_EQ(pool.youngest(), idx[8]);
    EXPECT_EQ(pool.invariantViolation(), "");
}

// --- Whole pipeline: every cycle of fuzz workloads --------------------------

struct PresetCase
{
    const char *label;
    int lane; ///< which residue class of seeds mod 4 this preset runs
    core::SchemeConfig config;
};

class SchemePoolInvariants : public ::testing::TestWithParam<PresetCase>
{
};

/**
 * 25 distinct fuzz seeds per preset (the four presets partition
 * seeds 0..99), with every cycle's post-state checked through the
 * Cpu tick hook. Budgets are small; the point is breadth of generated
 * control/dependence shapes, not depth per seed.
 */
TEST_P(SchemePoolInvariants, HoldEveryCycleOnFuzzWorkloads)
{
    const PresetCase &pc = GetParam();
    for (int k = 0; k < 25; ++k) {
        const uint64_t seed = static_cast<uint64_t>(pc.lane + 4 * k);
        auto workload =
            trace::makeWorkload("fuzz:" + std::to_string(seed));
        sim::ProcessorConfig cfg;
        cfg.scheme = pc.config;
        sim::Cpu cpu(cfg, *workload);

        std::string firstViolation;
        uint64_t violationCycle = 0;
        cpu.setTickHook([&](const sim::Cpu &c) {
            if (!firstViolation.empty())
                return;
            std::string v = c.pool().invariantViolation();
            if (v.empty())
                v = c.scheme().invariantViolation(c.pool());
            if (v.empty())
                v = c.scoreboard().maskConsistent();
            if (!v.empty()) {
                firstViolation = v;
                violationCycle = c.cycle();
            }
        });
        cpu.run(3000);
        EXPECT_EQ(firstViolation, "")
            << pc.label << " fuzz:" << seed << " at cycle "
            << violationCycle;
        EXPECT_FALSE(cpu.stats().deadlocked)
            << pc.label << " fuzz:" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, SchemePoolInvariants,
    ::testing::Values(
        PresetCase{"cam", 0, core::SchemeConfig::iq6464()},
        PresetCase{"ifdistr", 1, core::SchemeConfig::ifDistr()},
        PresetCase{"latfifo", 2, core::SchemeConfig::latFifo(8, 8, 8, 16)},
        PresetCase{"mbdistr", 3, core::SchemeConfig::mbDistr()}),
    [](const ::testing::TestParamInfo<PresetCase> &info) {
        return info.param.label;
    });

} // namespace

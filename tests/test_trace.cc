/**
 * @file
 * Tests for src/trace: ISA properties, trace sources, the synthetic
 * workload generator's invariants and the SPEC2000-like suite.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "trace/file_trace.hh"
#include "trace/isa.hh"
#include "trace/scenarios.hh"
#include "trace/spec2000.hh"
#include "trace/synthetic.hh"
#include "trace/trace_source.hh"
#include "trace_test_util.hh"

namespace
{

using namespace diq;
using namespace diq::trace;
using trace::test::expectSameOp;
using trace::test::sampleOps;

// --- ISA ---------------------------------------------------------------

TEST(Isa, LatenciesMatchTable1)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1);
    EXPECT_EQ(opLatency(OpClass::IntMult), 3);
    EXPECT_EQ(opLatency(OpClass::IntDiv), 20);
    EXPECT_EQ(opLatency(OpClass::FpAdd), 2);
    EXPECT_EQ(opLatency(OpClass::FpMult), 4);
    EXPECT_EQ(opLatency(OpClass::FpDiv), 12);
}

TEST(Isa, FpClassification)
{
    EXPECT_TRUE(isFpOp(OpClass::FpAdd));
    EXPECT_TRUE(isFpOp(OpClass::FpMult));
    EXPECT_TRUE(isFpOp(OpClass::FpDiv));
    EXPECT_FALSE(isFpOp(OpClass::IntAlu));
    EXPECT_FALSE(isFpOp(OpClass::Load));
    EXPECT_FALSE(isFpOp(OpClass::Store));
    EXPECT_FALSE(isFpOp(OpClass::Branch));
}

TEST(Isa, MemOpsGoToIntegerPipe)
{
    MicroOp load;
    load.op = OpClass::Load;
    load.dest = FpRegBase; // FP destination...
    EXPECT_FALSE(load.isFpPipe()); // ...but integer-pipe work
    EXPECT_TRUE(load.isLoad());
    EXPECT_TRUE(load.isMem());
}

TEST(Isa, RegisterSpaces)
{
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(32));
    EXPECT_TRUE(isFpReg(63));
    EXPECT_FALSE(isFpReg(64));
    EXPECT_FALSE(isFpReg(-1));
}

TEST(Isa, OpClassNamesDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i < static_cast<int>(OpClass::NumOpClasses); ++i)
        names.insert(opClassName(static_cast<OpClass>(i)));
    EXPECT_EQ(names.size(),
              static_cast<size_t>(OpClass::NumOpClasses));
}

// --- VectorTrace ---------------------------------------------------------

TEST(VectorTrace, FiniteAndRepeating)
{
    MicroOp a;
    a.pc = 4;
    MicroOp b;
    b.pc = 8;
    VectorTrace finite({a, b}, "t");
    MicroOp out;
    EXPECT_TRUE(finite.next(out));
    EXPECT_EQ(out.pc, 4u);
    EXPECT_TRUE(finite.next(out));
    EXPECT_FALSE(finite.next(out));
    finite.reset();
    EXPECT_TRUE(finite.next(out));

    VectorTrace loop({a, b}, "loop", /*repeat=*/true);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(loop.next(out));
}

TEST(VectorTrace, ResetAfterExhaustionReplaysTheFullTrace)
{
    // Regression: a non-repeating trace that has returned
    // end-of-stream must come back to life after reset(), replaying
    // the identical sequence — and EOS itself must be stable (asking
    // again keeps returning false without disturbing state).
    MicroOp a, b, c;
    a.pc = 4;
    b.pc = 8;
    c.pc = 12;
    VectorTrace t({a, b, c}, "t");
    MicroOp out;
    for (int round = 0; round < 3; ++round) {
        EXPECT_TRUE(t.next(out)) << round;
        EXPECT_EQ(out.pc, 4u);
        EXPECT_TRUE(t.next(out));
        EXPECT_EQ(out.pc, 8u);
        EXPECT_TRUE(t.next(out));
        EXPECT_EQ(out.pc, 12u);
        EXPECT_FALSE(t.next(out));
        EXPECT_FALSE(t.next(out)) << "EOS must be stable";
        t.reset();
    }
}

TEST(VectorTrace, ResetMidWrapRestartsARepeatingTrace)
{
    MicroOp a, b;
    a.pc = 4;
    b.pc = 8;
    VectorTrace loop({a, b}, "loop", /*repeat=*/true);
    MicroOp out;
    for (int i = 0; i < 5; ++i) // lands mid-way through a wrap
        EXPECT_TRUE(loop.next(out));
    EXPECT_EQ(out.pc, 4u);
    loop.reset();
    EXPECT_TRUE(loop.next(out));
    EXPECT_EQ(out.pc, 4u) << "reset must restart at the first op";
}

TEST(VectorTrace, EmptyTraceIsStableUnderResetAndRepeat)
{
    VectorTrace empty({}, "e");
    MicroOp out;
    EXPECT_FALSE(empty.next(out));
    empty.reset();
    EXPECT_FALSE(empty.next(out));

    VectorTrace emptyLoop({}, "el", /*repeat=*/true);
    EXPECT_FALSE(emptyLoop.next(out)) << "empty repeat must not spin";
}

// --- TraceSource contract: shared across every implementation ------------

/** What a contract test needs: the source plus whatever owns it. */
struct MadeSource
{
    std::unique_ptr<TraceSource> keepAlive; // inner source, if any
    std::unique_ptr<TraceSource> source;
    bool finite = false;
};

template <typename Tag> MadeSource makeSource();

struct VectorFiniteTag {};
struct VectorRepeatTag {};
struct SyntheticTag {};
struct FileTraceTag {};
struct PhasedTag {};
struct RecorderTag {};
struct ScenarioTag {};
struct FuzzTag {};

template <>
MadeSource
makeSource<VectorFiniteTag>()
{
    return {nullptr,
            std::make_unique<VectorTrace>(sampleOps("gcc", 64), "v"),
            /*finite=*/true};
}

template <>
MadeSource
makeSource<VectorRepeatTag>()
{
    return {nullptr,
            std::make_unique<VectorTrace>(sampleOps("gcc", 16), "vr",
                                          /*repeat=*/true),
            /*finite=*/false};
}

template <>
MadeSource
makeSource<SyntheticTag>()
{
    return {nullptr, makeSpecWorkload("swim"), /*finite=*/false};
}

template <>
MadeSource
makeSource<FileTraceTag>()
{
    std::string path = trace::test::tempPath("contract.diqt");
    auto live = makeSpecWorkload("mgrid");
    recordTrace(*live, path, 64);
    return {nullptr, std::make_unique<FileTrace>(path),
            /*finite=*/true};
}

template <>
MadeSource
makeSource<PhasedTag>()
{
    std::vector<std::unique_ptr<TraceSource>> phases;
    phases.push_back(makeSpecWorkload("gcc"));
    phases.push_back(makeSpecWorkload("swim"));
    return {nullptr,
            std::make_unique<PhasedTrace>(std::move(phases), 37, "ph"),
            /*finite=*/false};
}

template <>
MadeSource
makeSource<RecorderTag>()
{
    MadeSource m;
    m.keepAlive = makeSpecWorkload("applu");
    m.source = std::make_unique<TraceRecorder>(
        *m.keepAlive, trace::test::tempPath("contract_rec.diqt"));
    m.finite = false;
    return m;
}

template <>
MadeSource
makeSource<ScenarioTag>()
{
    return {nullptr, makeScenario("steer_flip"), /*finite=*/false};
}

template <>
MadeSource
makeSource<FuzzTag>()
{
    // The generated-trace source: a multi-phase seeded fuzz workload
    // resolved through the same token machinery the spec layer uses.
    return {nullptr, makeWorkload("fuzz:42:phases=3"),
            /*finite=*/false};
}

/** Up to `cap` ops (stops at end-of-stream). */
std::vector<MicroOp>
drainUpTo(TraceSource &src, size_t cap)
{
    std::vector<MicroOp> ops;
    MicroOp op;
    while (ops.size() < cap && src.next(op))
        ops.push_back(op);
    return ops;
}

template <typename Tag>
class TraceSourceContract : public ::testing::Test
{
};

using AllTraceSources =
    ::testing::Types<VectorFiniteTag, VectorRepeatTag, SyntheticTag,
                     FileTraceTag, PhasedTag, RecorderTag, ScenarioTag,
                     FuzzTag>;

class TraceSourceNames
{
  public:
    template <typename T>
    static std::string
    GetName(int)
    {
        if (std::is_same_v<T, VectorFiniteTag>)
            return "VectorTrace";
        if (std::is_same_v<T, VectorRepeatTag>)
            return "VectorTraceRepeat";
        if (std::is_same_v<T, SyntheticTag>)
            return "SyntheticWorkload";
        if (std::is_same_v<T, FileTraceTag>)
            return "FileTrace";
        if (std::is_same_v<T, PhasedTag>)
            return "PhasedTrace";
        if (std::is_same_v<T, RecorderTag>)
            return "TraceRecorder";
        if (std::is_same_v<T, FuzzTag>)
            return "FuzzWorkload";
        return "Scenario";
    }
};

TYPED_TEST_SUITE(TraceSourceContract, AllTraceSources,
                 TraceSourceNames);

TYPED_TEST(TraceSourceContract, ResetReplaysTheIdenticalPrefix)
{
    MadeSource m = makeSource<TypeParam>();
    auto first = drainUpTo(*m.source, 150);
    ASSERT_FALSE(first.empty());
    m.source->reset();
    auto second = drainUpTo(*m.source, 150);
    ASSERT_EQ(second.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i)
        expectSameOp(first[i], second[i], i);
}

TYPED_TEST(TraceSourceContract, ResetAfterPartialDrainRestarts)
{
    MadeSource m = makeSource<TypeParam>();
    auto reference = drainUpTo(*m.source, 40);
    ASSERT_FALSE(reference.empty());
    m.source->reset();
    // Drain an awkward, different prefix length, then reset again.
    (void)drainUpTo(*m.source, 7);
    m.source->reset();
    auto replay = drainUpTo(*m.source, 40);
    ASSERT_EQ(replay.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i)
        expectSameOp(reference[i], replay[i], i);
}

TYPED_TEST(TraceSourceContract, ExhaustionThenResetReplaysInFull)
{
    MadeSource m = makeSource<TypeParam>();
    if (!m.finite)
        GTEST_SKIP() << "infinite source";
    auto first = drainUpTo(*m.source, 100000);
    MicroOp op;
    EXPECT_FALSE(m.source->next(op));
    EXPECT_FALSE(m.source->next(op)) << "EOS must be stable";
    m.source->reset();
    auto second = drainUpTo(*m.source, 100000);
    ASSERT_EQ(second.size(), first.size())
        << "reset after exhaustion must replay the whole trace";
    for (size_t i = 0; i < first.size(); ++i)
        expectSameOp(first[i], second[i], i);
}

TYPED_TEST(TraceSourceContract, NameIsStableAcrossResetAndDraining)
{
    MadeSource m = makeSource<TypeParam>();
    std::string name = m.source->name();
    EXPECT_FALSE(name.empty());
    (void)drainUpTo(*m.source, 25);
    EXPECT_EQ(m.source->name(), name);
    m.source->reset();
    EXPECT_EQ(m.source->name(), name);
}

// --- SyntheticWorkload: per-profile invariants ------------------------------

class SuiteTest : public ::testing::TestWithParam<BenchmarkProfile>
{
};

TEST_P(SuiteTest, ConstructsWithoutRegisterCollisions)
{
    // SyntheticWorkload's constructor validates that the rotating
    // register pools never rewire the intended dependence graph.
    EXPECT_NO_THROW(makeSpecWorkload(GetParam()));
}

TEST_P(SuiteTest, DeterministicReplay)
{
    auto w1 = makeSpecWorkload(GetParam());
    auto w2 = makeSpecWorkload(GetParam());
    MicroOp a, b;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(w1->next(a));
        ASSERT_TRUE(w2->next(b));
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.memAddr, b.memAddr);
        ASSERT_EQ(a.taken, b.taken);
    }
}

TEST_P(SuiteTest, ResetReplaysIdentically)
{
    auto w = makeSpecWorkload(GetParam());
    std::vector<uint64_t> first;
    MicroOp op;
    for (int i = 0; i < 500; ++i) {
        w->next(op);
        first.push_back(op.pc ^ op.memAddr ^ (op.taken ? 1 : 0));
    }
    w->reset();
    for (int i = 0; i < 500; ++i) {
        w->next(op);
        EXPECT_EQ(first[static_cast<size_t>(i)],
                  op.pc ^ op.memAddr ^ (op.taken ? 1 : 0));
    }
}

TEST_P(SuiteTest, PcsAlignedAndInCodeSegment)
{
    auto w = makeSpecWorkload(GetParam());
    MicroOp op;
    for (int i = 0; i < 2000; ++i) {
        w->next(op);
        EXPECT_EQ(op.pc % 4, 0u);
        EXPECT_GE(op.pc, 0x400000u);
        EXPECT_LT(op.pc, 0x10000000u); // below the data segment
    }
}

TEST_P(SuiteTest, MemoryAddressesWithinFootprint)
{
    const auto &p = GetParam();
    auto w = makeSpecWorkload(p);
    MicroOp op;
    for (int i = 0; i < 5000; ++i) {
        w->next(op);
        if (op.isMem()) {
            EXPECT_GE(op.memAddr, 0x10000000u);
            // Arrays are padded up to at least 64 bytes each.
            EXPECT_LT(op.memAddr,
                      0x10000000u + std::max<uint64_t>(p.footprint, 1u << 13));
        }
    }
}

TEST_P(SuiteTest, OpMixMatchesProfileIntent)
{
    const auto &p = GetParam();
    auto w = makeSpecWorkload(p);
    MicroOp op;
    std::map<OpClass, int> mix;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w->next(op);
        ++mix[op.op];
    }
    EXPECT_GT(mix[OpClass::Load], 0);
    EXPECT_GT(mix[OpClass::Branch], 0);
    int fp_ops = mix[OpClass::FpAdd] + mix[OpClass::FpMult] +
        mix[OpClass::FpDiv];
    if (p.isFp) {
        EXPECT_GT(fp_ops, n / 10) << "FP suite must be FP-heavy";
    } else if (p.fpChains <= 0) {
        EXPECT_EQ(fp_ops, 0) << "pure integer code emits no FP ops";
    }
}

TEST_P(SuiteTest, LoopBranchesAreBiasedTaken)
{
    auto w = makeSpecWorkload(GetParam());
    MicroOp op;
    int branches = 0;
    int taken = 0;
    for (int i = 0; i < 50000; ++i) {
        w->next(op);
        if (op.isBranch()) {
            ++branches;
            taken += op.taken ? 1 : 0;
        }
    }
    ASSERT_GT(branches, 0);
    // Loop-closing branches are mostly taken; overall taken rate must
    // be comfortably above one half.
    EXPECT_GT(static_cast<double>(taken) / branches, 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteTest, ::testing::ValuesIn(allSpecProfiles()),
    [](const ::testing::TestParamInfo<BenchmarkProfile> &info) {
        return info.param.name;
    });

// --- Suite registry ----------------------------------------------------------

TEST(Spec2000, SuiteSizesMatchThePaper)
{
    EXPECT_EQ(specIntProfiles().size(), 12u);
    EXPECT_EQ(specFpProfiles().size(), 14u);
    EXPECT_EQ(allSpecProfiles().size(), 26u);
}

TEST(Spec2000, NamesAreUniqueAndLookupable)
{
    std::set<std::string> names;
    for (const auto &p : allSpecProfiles()) {
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
        EXPECT_EQ(specProfile(p.name).name, p.name);
    }
}

TEST(Spec2000, UnknownBenchmarkThrows)
{
    EXPECT_THROW(specProfile("doom3"), std::out_of_range);
}

TEST(Spec2000, SuiteTypesAreConsistent)
{
    for (const auto &p : specIntProfiles())
        EXPECT_FALSE(p.isFp) << p.name;
    for (const auto &p : specFpProfiles())
        EXPECT_TRUE(p.isFp) << p.name;
}

TEST(Spec2000, McfIsTheMemoryOutlier)
{
    const auto &mcf = specProfile("mcf");
    EXPECT_TRUE(mcf.pointerChase);
    for (const auto &p : specIntProfiles())
        if (p.name != "mcf")
            EXPECT_LE(p.footprint, mcf.footprint) << p.name;
}

TEST(Spec2000, FpSuiteIsWiderThanIntSuite)
{
    // The paper's premise: FP dependence graphs are wider.
    double int_w = 0;
    double fp_w = 0;
    for (const auto &p : specIntProfiles())
        int_w += p.parChains;
    for (const auto &p : specFpProfiles())
        fp_w += p.parChains;
    int_w /= specIntProfiles().size();
    fp_w /= specFpProfiles().size();
    EXPECT_GT(fp_w, 2.0 * int_w);
}

TEST(Spec2000, DistinctSeedsPerBenchmark)
{
    auto a = makeSpecWorkload("swim");
    auto b = makeSpecWorkload("mgrid");
    MicroOp oa, ob;
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        a->next(oa);
        b->next(ob);
        same += (oa.memAddr == ob.memAddr) ? 1 : 0;
    }
    EXPECT_LT(same, 100);
}

TEST(Synthetic, BodySizeIsStable)
{
    auto w = makeSpecWorkload("swim");
    size_t body = w->bodySize();
    EXPECT_GT(body, 10u);
    MicroOp op;
    // The loop branch recurs exactly every bodySize instructions.
    std::vector<size_t> branch_positions;
    for (size_t i = 0; i < body * 4; ++i) {
        w->next(op);
        if (op.isBranch() && op.target <= op.pc)
            branch_positions.push_back(i);
    }
    ASSERT_GE(branch_positions.size(), 2u);
    EXPECT_EQ(branch_positions[1] - branch_positions[0], body);
}

} // namespace

/**
 * @file
 * Tests for the parallel sweep runner subsystem
 * (docs/ARCHITECTURE.md §7): thread-pool draining, compute-once cache
 * semantics and hit/miss counters under concurrency, and the
 * determinism contract — parallel (--jobs=4) and serial (--jobs=1)
 * sweeps must produce bit-identical results and byte-identical CSV.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runner/result_cache.hh"
#include "runner/sweep_runner.hh"
#include "runner/thread_pool.hh"
#include "spec/experiment_spec.hh"
#include "trace/spec2000.hh"
#include "util/table_printer.hh"

namespace
{

using namespace diq;

// --- ThreadPool -----------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    runner::ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);

    // The pool stays usable after a wait().
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 110);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    runner::ThreadPool pool(2);
    pool.wait();
}

TEST(ThreadPool, ClampsToAtLeastOneWorker)
{
    runner::ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

// --- ResultCache ----------------------------------------------------

runner::SimResult
makeResult(double ipc)
{
    runner::SimResult r;
    r.ipc = ipc;
    return r;
}

TEST(ResultCache, ComputesOncePerKey)
{
    runner::ResultCache cache;
    std::atomic<int> computed{0};
    auto compute = [&computed] {
        computed.fetch_add(1);
        return makeResult(1.5);
    };

    const auto &a = cache.getOrCompute("k", compute);
    const auto &b = cache.getOrCompute("k", compute);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(computed.load(), 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(a.ipc, 1.5);
}

TEST(ResultCache, PeekSeesOnlyReadyEntries)
{
    runner::ResultCache cache;
    EXPECT_EQ(cache.peek("missing"), nullptr);
    cache.getOrCompute("k", [] { return makeResult(2.0); });
    const runner::SimResult *r = cache.peek("k");
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->ipc, 2.0);
}

TEST(ResultCache, ConcurrentRequestsCollapseOntoOneExecution)
{
    runner::ResultCache cache;
    std::atomic<int> computed{0};

    constexpr int kThreads = 8;
    constexpr int kKeys = 5;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &computed] {
            for (int k = 0; k < kKeys; ++k) {
                const auto &r = cache.getOrCompute(
                    "key" + std::to_string(k), [&computed, k] {
                        computed.fetch_add(1);
                        // Widen the in-flight window so other threads
                        // actually hit the wait path.
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                        return makeResult(k + 1.0);
                    });
                EXPECT_DOUBLE_EQ(r.ipc, k + 1.0);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(computed.load(), kKeys);
    EXPECT_EQ(cache.misses(), static_cast<uint64_t>(kKeys));
    EXPECT_EQ(cache.hits(),
              static_cast<uint64_t>(kThreads * kKeys - kKeys));
    EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
}

TEST(ResultCache, FailedComputationPropagatesAndIsNotPeekable)
{
    runner::ResultCache cache;
    EXPECT_THROW(cache.getOrCompute(
                     "bad",
                     []() -> runner::SimResult {
                         throw std::runtime_error("sim exploded");
                     }),
                 std::runtime_error);
    // The failure is sticky: later requesters rethrow instead of
    // silently reading a default-constructed result...
    EXPECT_THROW(cache.getOrCompute("bad",
                                    [] { return makeResult(1.0); }),
                 std::runtime_error);
    // ...and peek() reports no value rather than an all-zero one.
    EXPECT_EQ(cache.peek("bad"), nullptr);
}

TEST(ThreadPool, ThrowingTaskDoesNotAbortOrWedgeThePool)
{
    runner::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait(); // would deadlock if the throwing task skipped drain
    EXPECT_EQ(ran.load(), 1);
}

// --- SimJob keys ----------------------------------------------------

/**
 * SimJob::key() is the spec's canonical serialization, so two configs
 * differing in any single knob must never collide. Exhaustive by
 * construction: perturb every key in the spec registry one at a time
 * (this inherently covers chains_per_queue,
 * clear_table_on_mispredict, the CAM capacities, FU binding, every
 * Table 1 knob and both budgets) and require all keys distinct.
 */
TEST(SimJob, SingleKnobChangesNeverCollide)
{
    spec::ExperimentSpec base;
    base.processor.scheme = core::SchemeConfig::mbDistr();
    base.benchmark = "swim";
    runner::SimJob a = runner::makeJob(base);

    std::vector<std::string> keys{a.key()};
    for (const auto &k : spec::keyRegistry()) {
        spec::ExperimentSpec mutated = base;
        // Pick a valid value different from the base's current one.
        std::string current = k.get(base);
        std::string changed;
        if (k.kind == spec::KeyInfo::Kind::Int) {
            int64_t cur = std::stoll(current);
            changed = std::to_string(cur > k.lo ? cur - 1 : cur + 1);
        } else {
            for (const auto &c : k.choices)
                if (c != current) {
                    changed = c;
                    break;
                }
        }
        ASSERT_FALSE(changed.empty()) << k.name;
        mutated.set(k.name, changed);
        ASSERT_NE(mutated, base) << k.name;
        keys.push_back(runner::makeJob(mutated).key());
        EXPECT_NE(keys.back(), a.key()) << "key collision on " << k.name;
    }

    // All perturbed keys are pairwise distinct, too.
    std::set<std::string> unique(keys.begin(), keys.end());
    EXPECT_EQ(unique.size(), keys.size());
}

/** The knobs the old hand-rolled key was prone to drop, explicitly. */
TEST(SimJob, KeyCoversEveryKnobTheDisplayNameOmits)
{
    spec::ExperimentSpec base;
    base.processor.scheme = core::SchemeConfig::mbDistr();
    base.benchmark = "swim";
    runner::SimJob a = runner::makeJob(base);

    spec::ExperimentSpec b = base;
    EXPECT_EQ(a.key(), runner::makeJob(b).key());
    b.processor.scheme.chainsPerQueue = 2;
    EXPECT_NE(a.key(), runner::makeJob(b).key());

    b = base;
    b.processor.scheme.clearTableOnMispredict = false;
    EXPECT_NE(a.key(), runner::makeJob(b).key());

    b = base;
    b.processor.scheme.camIntEntries = 128;
    EXPECT_NE(a.key(), runner::makeJob(b).key());

    b = base;
    b.processor.scheme.camFpEntries = 128;
    EXPECT_NE(a.key(), runner::makeJob(b).key());

    b = base;
    b.processor.scheme.distributedFus =
        !base.processor.scheme.distributedFus;
    EXPECT_NE(a.key(), runner::makeJob(b).key());

    b = base;
    b.measureInsts += 1;
    EXPECT_NE(a.key(), runner::makeJob(b).key());

    b = base;
    b.benchmark = "gcc";
    EXPECT_NE(a.key(), runner::makeJob(b).key());
}

// --- SweepRunner determinism ---------------------------------------

runner::SweepSpec
smallSpec()
{
    runner::SweepSpec spec;
    std::vector<core::SchemeConfig> schemes{
        core::SchemeConfig::iq6464(), core::SchemeConfig::mbDistr()};
    std::vector<trace::BenchmarkProfile> profiles{
        trace::specProfile("gcc"), trace::specProfile("swim"),
        trace::specProfile("art")};
    spec.addGrid(schemes, profiles);
    return spec;
}

runner::RunnerOptions
tinyOptions(unsigned jobs)
{
    runner::RunnerOptions opts;
    opts.warmupInsts = 200;
    opts.measureInsts = 2000;
    opts.jobs = jobs;
    return opts;
}

/** Render a spec's results the way the figure benches do. */
std::string
renderCsv(runner::SweepRunner &r, const runner::SweepSpec &spec)
{
    util::TablePrinter t({"scheme", "benchmark", "ipc", "cycles",
                          "energy_pj"});
    for (const auto *res : r.runAll(spec)) {
        t.addRow({res->scheme, res->benchmark,
                  util::TablePrinter::fmt(res->ipc, 6),
                  std::to_string(res->stats.cycles),
                  util::TablePrinter::fmt(res->energy.total(), 3)});
    }
    return t.renderCsv();
}

TEST(SweepRunner, ParallelAndSerialSweepsAreByteIdentical)
{
    auto spec = smallSpec();

    runner::SweepRunner serial(tinyOptions(1));
    runner::SweepRunner parallel(tinyOptions(4));
    EXPECT_EQ(serial.jobCount(), 1u);
    EXPECT_EQ(parallel.jobCount(), 4u);

    std::string csv_serial = renderCsv(serial, spec);
    std::string csv_parallel = renderCsv(parallel, spec);
    EXPECT_EQ(csv_serial, csv_parallel);

    // Beyond the CSV projection: the raw results agree bit for bit.
    for (const auto &[exp, profile] : spec.points()) {
        const auto &a = serial.run(exp, profile);
        const auto &b = parallel.run(exp, profile);
        EXPECT_EQ(a.ipc, b.ipc);
        EXPECT_EQ(a.stats.cycles, b.stats.cycles);
        EXPECT_EQ(a.stats.committed, b.stats.committed);
        EXPECT_EQ(a.stats.counters, b.stats.counters);
        EXPECT_EQ(a.energy.total(), b.energy.total());
    }
}

TEST(SweepRunner, PrefetchMakesEveryPointACacheHit)
{
    auto spec = smallSpec();
    runner::SweepRunner r(tinyOptions(4));
    r.prefetch(spec);
    EXPECT_EQ(r.cacheMisses(), spec.size());
    uint64_t misses_before = r.cacheMisses();
    for (const auto &[exp, profile] : spec.points())
        r.run(exp, profile);
    EXPECT_EQ(r.cacheMisses(), misses_before);
    EXPECT_GE(r.cacheHits(), spec.size());
}

TEST(SweepRunner, DuplicateSpecPointsExecuteOnce)
{
    runner::SweepSpec spec;
    auto scheme = core::SchemeConfig::iq6464();
    auto profile = trace::specProfile("gcc");
    for (int i = 0; i < 6; ++i)
        spec.add(scheme, profile);

    runner::SweepRunner r(tinyOptions(4));
    auto results = r.runAll(spec);
    ASSERT_EQ(results.size(), 6u);
    EXPECT_EQ(r.cacheMisses(), 1u);
    for (const auto *res : results)
        EXPECT_EQ(res, results.front());
}

TEST(SweepRunner, RunAllPreservesSpecOrder)
{
    auto spec = smallSpec();
    runner::SweepRunner r(tinyOptions(4));
    auto results = r.runAll(spec);
    ASSERT_EQ(results.size(), spec.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i]->scheme,
                  spec.points()[i].first.processor.scheme.name());
        EXPECT_EQ(results[i]->benchmark, spec.points()[i].second.name);
    }
}

} // namespace

/**
 * @file
 * Record→replay equivalence: simulating from a recorded `.diqt` trace
 * must produce a counter dump byte-identical to simulating the live
 * source, for every scheme × workload combination. This is the
 * contract that makes `.diqt` a portable workload interchange format
 * — a trace file carries everything the simulation consumes.
 *
 * The recording is made exactly the way `diq record` makes it: the
 * live workload is teed through a TraceRecorder while the full
 * warm-up + measure run executes, so the file holds precisely the
 * op stream the simulation consumed.
 */

#include <gtest/gtest.h>

#include <string>

#include "runner/sim_job.hh"
#include "spec/experiment_spec.hh"
#include "trace/file_trace.hh"
#include "trace_test_util.hh"

namespace
{

using namespace diq;
using trace::test::tempPath;

/** Full counter dump + headline stats as one comparable string. */
std::string
dumpOf(const runner::SimResult &r)
{
    return "cycles=" + std::to_string(r.stats.cycles) +
           " committed=" + std::to_string(r.stats.committed) +
           " energy=" + std::to_string(r.energy.total()) + "\n" +
           r.stats.counters.toString();
}

/**
 * Run `specText` live while recording, then replay the recording
 * under the same machine spec; EXPECT byte-identical counter dumps.
 */
void
expectReplayEquivalence(const std::string &specText,
                        const std::string &traceFile)
{
    std::string path = tempPath(traceFile);

    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(specText);
    runner::SimJob live_job = runner::makeJob(exp);
    auto live = runner::makeJobWorkload(live_job);
    trace::TraceRecorder recorder(*live, path);
    runner::SimResult live_result =
        runner::simulateJob(live_job, recorder);
    recorder.finalize();

    spec::ExperimentSpec replay_exp = exp;
    replay_exp.set("bench", "trace:" + path);
    runner::SimResult replay_result =
        runner::executeJob(runner::makeJob(replay_exp));

    EXPECT_EQ(dumpOf(live_result), dumpOf(replay_result))
        << specText << " via " << path;
    EXPECT_EQ(live_result.ipc, replay_result.ipc);
}

// Three paper configurations over three workload classes (benchmark,
// scenario, phased composition) — the acceptance matrix.

TEST(RecordReplay, CamBaselineOnSwim)
{
    expectReplayEquivalence(
        "iq6464 bench=swim warmup_insts=500 measure_insts=6000",
        "replay_iq64_swim.diqt");
}

TEST(RecordReplay, IssueFifoDistrOnGcc)
{
    expectReplayEquivalence(
        "if_distr bench=gcc warmup_insts=500 measure_insts=6000",
        "replay_ifdistr_gcc.diqt");
}

TEST(RecordReplay, MixBuffDistrOnChainStormScenario)
{
    expectReplayEquivalence(
        "mb_distr bench=scenario:chain_storm warmup_insts=500 "
        "measure_insts=6000",
        "replay_mbdistr_chainstorm.diqt");
}

TEST(RecordReplay, LatFifoOnPhasedComposition)
{
    expectReplayEquivalence(
        "latfifo_8x8_8x16 bench=scenario:phased:gcc+swim@2000 "
        "warmup_insts=500 measure_insts=6000",
        "replay_latfifo_phased.diqt");
}

// All four scheme presets over a generated `fuzz:` workload: replay
// equivalence must hold on generator-defined streams, not just the
// hand-built profiles above (pool-rework pin).

TEST(RecordReplayFuzz, CamBaseline)
{
    expectReplayEquivalence(
        "iq6464 bench=fuzz:11 warmup_insts=500 measure_insts=6000",
        "replay_iq64_fuzz11.diqt");
}

TEST(RecordReplayFuzz, IssueFifoDistr)
{
    expectReplayEquivalence(
        "if_distr bench=fuzz:11 warmup_insts=500 measure_insts=6000",
        "replay_ifdistr_fuzz11.diqt");
}

TEST(RecordReplayFuzz, LatFifo)
{
    expectReplayEquivalence(
        "latfifo_8x8_8x16 bench=fuzz:11 warmup_insts=500 "
        "measure_insts=6000",
        "replay_latfifo_fuzz11.diqt");
}

TEST(RecordReplayFuzz, MixBuffDistr)
{
    expectReplayEquivalence(
        "mb_distr bench=fuzz:11 warmup_insts=500 measure_insts=6000",
        "replay_mbdistr_fuzz11.diqt");
}

TEST(RecordReplay, ReRecordingAReplayIsIdempotent)
{
    // Recording while replaying a trace re-encodes the same stream:
    // the second-generation file must replay identically too.
    std::string gen1 = tempPath("gen1.diqt");
    std::string gen2 = tempPath("gen2.diqt");

    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(
        "mb_distr bench=swim warmup_insts=300 measure_insts=3000");
    runner::SimJob job = runner::makeJob(exp);
    auto live = runner::makeJobWorkload(job);
    trace::TraceRecorder rec1(*live, gen1);
    runner::SimResult first = runner::simulateJob(job, rec1);
    rec1.finalize();

    spec::ExperimentSpec exp2 = exp;
    exp2.set("bench", "trace:" + gen1);
    runner::SimJob job2 = runner::makeJob(exp2);
    auto replay = runner::makeJobWorkload(job2);
    trace::TraceRecorder rec2(*replay, gen2);
    runner::SimResult second = runner::simulateJob(job2, rec2);
    rec2.finalize();

    spec::ExperimentSpec exp3 = exp;
    exp3.set("bench", "trace:" + gen2);
    runner::SimResult third =
        runner::executeJob(runner::makeJob(exp3));

    EXPECT_EQ(dumpOf(first), dumpOf(second));
    EXPECT_EQ(dumpOf(second), dumpOf(third));
}

} // namespace

/**
 * @file
 * Permanent replay tests over the shrunk fuzz reproducers committed
 * under tests/regression_traces/ (docs/ARCHITECTURE.md §9).
 *
 * Each `.diqt` here is the output of the fuzz shrinker: a fuzz:<seed>
 * stream reduced to a minimal core that pins a property worth keeping
 * (the shrinker's planted-violation shapes — an FpDiv+Store pair, a
 * one-op-per-class core, a branch-churn core). The tests replay every
 * committed trace through the full differential harness:
 *
 *   - every scheme must pass the whole invariant catalog on it, and
 *   - a second replay must be byte-identical, dump for dump.
 *
 * To add a trace: shrink a violating stream (`diq fuzz --shrink`
 * writes fuzz_traces/fuzz_<seed>_shrunk.diqt) and copy it here; the
 * suite discovers `.diqt` files by scanning the directory, so no code
 * change is needed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/differential.hh"
#include "trace/file_trace.hh"

#ifndef DIQ_REGRESSION_TRACE_DIR
#error "DIQ_REGRESSION_TRACE_DIR must point at tests/regression_traces"
#endif

namespace
{

using namespace diq;

std::vector<std::string>
traceFiles()
{
    std::vector<std::string> paths;
    for (const auto &entry : std::filesystem::directory_iterator(
             DIQ_REGRESSION_TRACE_DIR))
        if (entry.path().extension() == ".diqt")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    return paths;
}

std::vector<trace::MicroOp>
loadOps(const std::string &path)
{
    trace::FileTrace file(path);
    std::vector<trace::MicroOp> ops;
    trace::MicroOp op;
    while (file.next(op))
        ops.push_back(op);
    return ops;
}

TEST(RegressionTraces, DirectoryHoldsTheCommittedReproducers)
{
    // The suite must never silently become a no-op: the first shrunk
    // reproducers are committed, and discovery must see them.
    EXPECT_GE(traceFiles().size(), 3u);
}

TEST(RegressionTraces, EveryTraceReplaysDifferentialClean)
{
    for (const auto &path : traceFiles()) {
        SCOPED_TRACE(path);
        auto ops = loadOps(path);
        ASSERT_FALSE(ops.empty());

        fuzz::DiffOptions opts;
        opts.writeArtifacts = false;
        auto report = fuzz::runDifferentialOnOps(ops, path, opts);
        EXPECT_TRUE(report.ok())
            << (report.violations.empty()
                    ? ""
                    : report.violations[0].invariant + ": " +
                          report.violations[0].detail);
    }
}

TEST(RegressionTraces, ReplayIsByteIdenticalAcrossRuns)
{
    for (const auto &path : traceFiles()) {
        SCOPED_TRACE(path);
        auto ops = loadOps(path);

        fuzz::DiffOptions opts;
        opts.writeArtifacts = false;
        auto a = fuzz::runDifferentialOnOps(ops, path, opts);
        auto b = fuzz::runDifferentialOnOps(ops, path, opts);
        ASSERT_EQ(a.runs.size(), b.runs.size());
        for (size_t i = 0; i < a.runs.size(); ++i)
            EXPECT_EQ(a.runs[i].dump, b.runs[i].dump)
                << a.runs[i].preset;
    }
}

} // namespace

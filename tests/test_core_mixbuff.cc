/**
 * @file
 * Tests for the MixBUFF scheme — the paper's contribution (§3.2):
 * 2-bit chain codes, balanced chain allocation, join-last-of-chain
 * steering, the Figure 5 selection example, delayed-instruction
 * priority, chain freeing, and LatFIFO's estimator/placement (§3.1).
 */

#include <gtest/gtest.h>

#include "core/issue_time_estimator.hh"
#include "core/lat_fifo_issue_scheme.hh"
#include "core/mixbuff_cluster.hh"
#include "core/mixbuff_issue_scheme.hh"
#include "power/events.hh"
#include "scheme_test_util.hh"

namespace
{

using namespace diq;
using namespace diq::core;
using diq::test::MiniMachine;
using trace::OpClass;
namespace ev = diq::power::ev;

// --- 2-bit chain codes (paper §3.2.1) ---------------------------------------

TEST(ChainCode, PaperEncoding)
{
    // "00 if the instruction is going to finish next cycle, 01 if it
    //  has finished, and 11 if it will take 2 or more cycles".
    EXPECT_EQ(MixBuffCluster::codeFor(1), ChainCode::FinishesNextCycle);
    EXPECT_EQ(MixBuffCluster::codeFor(0), ChainCode::Finished);
    EXPECT_EQ(MixBuffCluster::codeFor(2), ChainCode::Busy);
    EXPECT_EQ(MixBuffCluster::codeFor(12), ChainCode::Busy);
}

TEST(ChainCode, PriorityOrderIsNumeric)
{
    EXPECT_LT(static_cast<int>(ChainCode::FinishesNextCycle),
              static_cast<int>(ChainCode::Finished));
    EXPECT_LT(static_cast<int>(ChainCode::Finished),
              static_cast<int>(ChainCode::Busy));
}

// --- Chain allocation --------------------------------------------------------

TEST(MixBuff, BalancedChainAllocationOrder)
{
    // Paper: "chain 0 from queue 0, chain 0 from queue 1, chain 1
    // from queue 0, chain 1 from queue 1, ...".
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 2, 8, 3));
    std::vector<std::pair<int, int>> expected{
        {0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}};
    for (size_t i = 0; i < expected.size(); ++i) {
        auto *inst = m.make(OpClass::FpAdd,
                            trace::FpRegBase + static_cast<int>(i), -1,
                            -1, i + 1);
        ASSERT_TRUE(m.dispatch(scheme, inst)) << i;
        EXPECT_EQ(inst->queueId, expected[i].first) << i;
        EXPECT_EQ(inst->chainId, expected[i].second) << i;
    }
}

TEST(MixBuff, DependentJoinsProducersChain)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 2, 8, 4));
    auto *prod = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    m.dispatch(scheme, prod);
    auto *cons = m.make(OpClass::FpMult, 34, 33, -1, 2);
    m.dispatch(scheme, cons);
    EXPECT_EQ(cons->queueId, prod->queueId);
    EXPECT_EQ(cons->chainId, prod->chainId);
}

TEST(MixBuff, OnlyLastOfChainAttracts)
{
    // A consumer of a value produced mid-chain must NOT join; only the
    // chain's last instruction attracts (paper §3.2.1).
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 2, 8, 4));
    auto *a = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    auto *b = m.make(OpClass::FpAdd, 34, 33, -1, 2); // joins, now last
    m.dispatch(scheme, a);
    m.dispatch(scheme, b);
    auto *c = m.make(OpClass::FpAdd, 35, 33, -1, 3); // consumer of a
    m.dispatch(scheme, c);
    EXPECT_FALSE(c->queueId == a->queueId && c->chainId == a->chainId)
        << "a is no longer the last instruction of its chain";
}

TEST(MixBuff, ChainLimitStallsDispatch)
{
    MiniMachine m;
    // 1 queue x 4 entries, 2 chains max.
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 1, 4, 2));
    ASSERT_TRUE(m.dispatch(scheme,
                           m.make(OpClass::FpAdd, 33, -1, -1, 1)));
    ASSERT_TRUE(m.dispatch(scheme,
                           m.make(OpClass::FpAdd, 34, -1, -1, 2)));
    EXPECT_FALSE(m.dispatch(scheme,
                            m.make(OpClass::FpAdd, 35, -1, -1, 3)))
        << "no free chain identifier: dispatch stalls";
}

TEST(MixBuff, UnboundedChainsGrow)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(
        SchemeConfig::mixBuff(2, 2, 1, 8, /*chains=*/0));
    for (uint64_t i = 0; i < 6; ++i) {
        ASSERT_TRUE(m.dispatch(
            scheme, m.make(OpClass::FpAdd,
                           trace::FpRegBase + static_cast<int>(i), -1,
                           -1, i + 1)))
            << i;
    }
    EXPECT_EQ(scheme.fpCluster().busyChains(0), 6);
}

TEST(MixBuff, QueueCapacityStallsDispatch)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 1, 2, 8));
    ASSERT_TRUE(m.dispatch(scheme,
                           m.make(OpClass::FpAdd, 33, -1, -1, 1)));
    ASSERT_TRUE(m.dispatch(scheme,
                           m.make(OpClass::FpAdd, 34, 33, -1, 2)));
    EXPECT_FALSE(m.dispatch(scheme,
                            m.make(OpClass::FpAdd, 35, 34, -1, 3)))
        << "buffer full";
}

// --- Selection (Figure 5) ------------------------------------------------------

TEST(MixBuff, SelectionPrefersReadyChainThenAge)
{
    // Reconstruct the spirit of Figure 5: several chains in one queue
    // with different counter states; the oldest instruction among the
    // highest-priority (00) chains must win.
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 1, 16, 8));

    // Chain 0: a long FpDiv producer then a dependent (chain stays
    // busy for a while -> dependent's code is 11).
    auto *div_prod = m.make(OpClass::FpDiv, 33, -1, -1, 1);
    m.dispatch(scheme, div_prod);
    auto *div_cons = m.make(OpClass::FpAdd, 34, 33, -1, 2);
    m.dispatch(scheme, div_cons);

    // Chain 1: FpAdd producer (2 cycles) then a dependent.
    auto *add_prod = m.make(OpClass::FpAdd, 35, -1, -1, 3);
    m.dispatch(scheme, add_prod);
    auto *add_cons = m.make(OpClass::FpAdd, 36, 35, -1, 4);
    m.dispatch(scheme, add_cons);

    // Cycle 1: both chain heads are fresh (counter 0 -> code 01); the
    // oldest (div_prod) is selected and issues at cycle 2.
    m.step(scheme);
    auto c2 = m.step(scheme);
    ASSERT_EQ(c2.size(), 1u);
    EXPECT_EQ(c2[0], div_prod);

    // Cycle 3: add_prod (01) wins over div_cons (chain counter 11).
    auto c3 = m.step(scheme);
    ASSERT_EQ(c3.size(), 1u);
    EXPECT_EQ(c3[0], add_prod);

    // add_prod has latency 2: its chain shows 00 one cycle later, so
    // add_cons is selected then and issues exactly when the result is
    // ready — before the still-busy divide chain's consumer.
    auto c4 = m.step(scheme);
    EXPECT_TRUE(c4.empty()) << "chain counter still at 2";
    auto c5 = m.step(scheme);
    ASSERT_EQ(c5.size(), 1u);
    EXPECT_EQ(c5[0], add_cons);
}

TEST(MixBuff, BackToBackThroughChainCounters)
{
    // A chain of 1-cycle... FP adds are 2 cycles: dependent issues
    // exactly producer latency cycles after the producer, with no
    // wakeup hardware involved.
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 1, 16, 8));
    auto *a = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    auto *b = m.make(OpClass::FpAdd, 34, 33, -1, 2);
    m.dispatch(scheme, a);
    m.dispatch(scheme, b);
    m.step(scheme); // select a
    auto ca = m.step(scheme); // issue a, latency 2
    ASSERT_EQ(ca.size(), 1u);
    uint64_t a_cycle = m.cycle;
    while (m.cycle < a_cycle + 10) {
        auto out = m.step(scheme);
        if (!out.empty()) {
            EXPECT_EQ(out[0], b);
            EXPECT_EQ(m.cycle, a_cycle + trace::opLatency(OpClass::FpAdd))
                << "dependent issues exactly when the result arrives";
            return;
        }
    }
    FAIL() << "dependent never issued";
}

TEST(MixBuff, FailedSelectionBecomesDelayed)
{
    // An instruction whose operand (from another cluster, e.g. a load
    // miss) is not ready when selected must stay buffered and lose to
    // a first-time-ready instruction next time.
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 1, 16, 8));
    m.scoreboard.markPending(5); // pretend load destination, pending
    auto *stuck = m.make(OpClass::FpAdd, 33, 5, -1, 1);
    m.dispatch(scheme, stuck);
    m.step(scheme); // selected (fresh chain, 01 class)
    auto out = m.step(scheme);
    EXPECT_TRUE(out.empty()) << "operand not ready: issue fails";
    EXPECT_EQ(scheme.occupancy(), 1u);

    // A younger chain head lands in the same 01 (delayed) class, and
    // age breaks the tie: the older, still-unready instruction keeps
    // winning the selection slot. This priority inversion is a real
    // cost of the scheme the paper accepts (only 00-class first-time
    // ready instructions overtake delayed ones).
    auto *fresh_prod = m.make(OpClass::FpAdd, 35, -1, -1, 2);
    m.dispatch(scheme, fresh_prod);
    bool fresh_issued = false;
    for (int i = 0; i < 4; ++i)
        for (auto *inst : m.step(scheme))
            fresh_issued |= inst == fresh_prod;
    EXPECT_FALSE(fresh_issued)
        << "same-class younger instruction waits behind the delayed one";
    // Once the operand arrives, the queue drains oldest-first.
    m.scoreboard.setReadyAt(5, m.cycle);
    bool stuck_issued = false;
    for (int i = 0; i < 6 && !(stuck_issued && fresh_issued); ++i) {
        for (auto *inst : m.step(scheme)) {
            stuck_issued |= inst == stuck;
            fresh_issued |= inst == fresh_prod;
        }
    }
    EXPECT_TRUE(stuck_issued);
    EXPECT_TRUE(fresh_issued);
}

TEST(MixBuff, ChainFreedAfterDrain)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 1, 16, 2));
    auto *a = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    m.dispatch(scheme, a);
    EXPECT_EQ(scheme.fpCluster().busyChains(0), 1);
    for (int i = 0; i < 8; ++i)
        m.step(scheme);
    EXPECT_EQ(scheme.fpCluster().busyChains(0), 0)
        << "issued-and-completed chain releases its identifier";
}

TEST(MixBuff, OneSelectionPerQueuePerCycle)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mixBuff(2, 2, 2, 16, 8));
    // Four independent ready chains spread over two queues: at most
    // one instruction per queue per cycle may issue.
    for (uint64_t i = 0; i < 4; ++i) {
        m.dispatch(scheme,
                   m.make(OpClass::FpAdd,
                          trace::FpRegBase + static_cast<int>(i), -1, -1,
                          i + 1));
    }
    m.step(scheme);
    auto out = m.step(scheme);
    EXPECT_LE(out.size(), 2u) << "one per queue";
}

TEST(MixBuff, EnergyEventsEmitted)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mbDistr());
    m.dispatch(scheme, m.make(OpClass::FpAdd, 33, 40, 41, 1));
    EXPECT_EQ(m.counters.get(ev::BuffWrites), 1u);
    EXPECT_EQ(m.counters.get(ev::QrenameReads), 2u);
    m.step(scheme); // select
    EXPECT_GE(m.counters.get(ev::RegLatches), 1u);
    EXPECT_GE(m.counters.get(ev::ChainSweeps), 1u);
    EXPECT_GE(m.counters.get(ev::SelectRequests), 1u);
    m.step(scheme); // issue
    EXPECT_EQ(m.counters.get(ev::BuffReads), 1u);
}

TEST(MixBuff, IntClusterIsIssueFifo)
{
    MiniMachine m;
    MixBuffIssueScheme scheme(SchemeConfig::mbDistr());
    auto *prod = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    auto *cons = m.make(OpClass::IntAlu, 2, 1, -1, 2);
    m.dispatch(scheme, prod);
    m.dispatch(scheme, cons);
    EXPECT_EQ(prod->queueId, cons->queueId);
    EXPECT_EQ(m.counters.get(ev::FifoWrites), 2u);
}

TEST(MixBuff, Name)
{
    MixBuffIssueScheme scheme(SchemeConfig::mbDistr());
    EXPECT_EQ(scheme.name(), "MixBUFF_8x8_8x16_distr");
}

// --- LatFIFO (paper §3.1) -----------------------------------------------------

TEST(Estimator, PaperRecurrence)
{
    IssueTimeEstimator est(2);
    DynInst add;
    trace::MicroOp op;
    op.op = OpClass::FpAdd;
    op.dest = 33;
    op.src1 = trace::NoReg;
    op.src2 = trace::NoReg;
    add.reset(op, 1);
    // No operands: IssueCycle = cycle + 1; DestCycle = issue + lat(2).
    EXPECT_EQ(est.onDispatch(add, 10), 11u);
    EXPECT_EQ(est.destCycle(33), 13u);

    // Dependent: IssueCycle = max(cycle+1, DestCycle(src)).
    DynInst mul;
    op.op = OpClass::FpMult;
    op.dest = 34;
    op.src1 = 33;
    mul.reset(op, 2);
    EXPECT_EQ(est.onDispatch(mul, 10), 13u);
    EXPECT_EQ(est.destCycle(34), 17u);
}

TEST(Estimator, LoadsAssumeL1HitAndStoreBarrier)
{
    IssueTimeEstimator est(2);
    trace::MicroOp op;

    DynInst store;
    op.op = OpClass::Store;
    op.src1 = 1;
    op.src2 = 2;
    op.dest = trace::NoReg;
    store.reset(op, 1);
    est.onDispatch(store, 10); // issue 11 -> AllStoreAddr = 12
    EXPECT_EQ(est.allStoreAddr(), 11u + trace::AddressLatency);

    DynInst load;
    op.op = OpClass::Load;
    op.src1 = 1;
    op.src2 = trace::NoReg;
    op.dest = 40;
    load.reset(op, 2);
    // IssueCycle = max(11, AllStoreAddr=12) = 12; DestCycle = 12+1+2.
    EXPECT_EQ(est.onDispatch(load, 10), 12u);
    EXPECT_EQ(est.destCycle(40), 15u);
}

TEST(Estimator, EstimateIsPure)
{
    IssueTimeEstimator est(2);
    DynInst add;
    trace::MicroOp op;
    op.op = OpClass::FpAdd;
    op.dest = 33;
    add.reset(op, 1);
    uint64_t e1 = est.estimate(add, 5);
    uint64_t e2 = est.estimate(add, 5);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(est.destCycle(33), 0u) << "estimate() must not commit";
}

TEST(LatFifo, InterleavesIndependentChainsByEstimate)
{
    // Two independent FpAdds dispatched in consecutive cycles: the
    // second is expected one cycle later, so it may share the first's
    // FIFO (unlike IssueFIFO, which would demand a second queue).
    MiniMachine m;
    LatFifoIssueScheme scheme(SchemeConfig::latFifo(2, 4, 1, 4));
    auto *a = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    auto *b = m.make(OpClass::FpAdd, 34, -1, -1, 2);
    m.dispatch(scheme, a);
    ++m.cycle; // next cycle: b's estimate is one later than a's
    m.dispatch(scheme, b);
    EXPECT_EQ(a->queueId, b->queueId);
}

TEST(LatFifo, SimultaneousIndependentsSpread)
{
    MiniMachine m;
    LatFifoIssueScheme scheme(SchemeConfig::latFifo(2, 4, 2, 4));
    auto *a = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    auto *b = m.make(OpClass::FpAdd, 34, -1, -1, 2);
    m.dispatch(scheme, a);
    m.dispatch(scheme, b); // same cycle, same estimate: needs empty
    EXPECT_NE(a->queueId, b->queueId);
}

TEST(LatFifo, StallsWhenNoQueueFits)
{
    MiniMachine m;
    LatFifoIssueScheme scheme(SchemeConfig::latFifo(2, 4, 1, 2));
    ASSERT_TRUE(m.dispatch(scheme,
                           m.make(OpClass::FpAdd, 33, -1, -1, 1)));
    // Same cycle, same estimate: the tail is NOT one cycle earlier,
    // and there is no empty queue -> stall.
    EXPECT_FALSE(m.dispatch(scheme,
                            m.make(OpClass::FpAdd, 34, -1, -1, 2)));
    // One cycle later the estimate moves past the tail: placement ok.
    ++m.cycle;
    ASSERT_TRUE(m.dispatch(scheme,
                           m.make(OpClass::FpAdd, 35, -1, -1, 3)));
    // Queue (size 2) is now full: stall regardless of estimates.
    ++m.cycle;
    EXPECT_FALSE(m.dispatch(scheme,
                            m.make(OpClass::FpAdd, 36, -1, -1, 4)))
        << "single FP FIFO full: dispatch stalls";
}

TEST(LatFifo, Name)
{
    LatFifoIssueScheme scheme(SchemeConfig::latFifo(16, 16, 8, 16));
    EXPECT_EQ(scheme.name(), "LatFIFO_16x16_8x16");
}

// --- Factory ---------------------------------------------------------------

TEST(Factory, BuildsEveryKind)
{
    EXPECT_EQ(makeScheme(SchemeConfig::iq6464())->name(), "IQ_64_64");
    EXPECT_EQ(makeScheme(SchemeConfig::unbounded())->name(),
              "IQ_256_256");
    EXPECT_EQ(makeScheme(SchemeConfig::issueFifo(8, 8, 8, 16))->name(),
              "IssueFIFO_8x8_8x16");
    EXPECT_EQ(makeScheme(SchemeConfig::latFifo(16, 16, 12, 8))->name(),
              "LatFIFO_16x16_12x8");
    EXPECT_EQ(makeScheme(SchemeConfig::mbDistr())->name(),
              "MixBUFF_8x8_8x16_distr");
}

TEST(Factory, ConfigNamesMatchSchemeNames)
{
    for (const auto &cfg : {SchemeConfig::iq6464(),
                            SchemeConfig::ifDistr(),
                            SchemeConfig::mbDistr(),
                            SchemeConfig::latFifo(16, 16, 10, 8)}) {
        EXPECT_EQ(cfg.name(), makeScheme(cfg)->name());
    }
}

} // namespace

/**
 * @file
 * Smoke test: every figure/table bench and example binary must run to
 * completion and exit 0 on a tiny instruction budget.
 *
 * The harness binaries honor DIQ_INSTS / DIQ_WARMUP environment
 * variables, so the budget is shrunk here to keep the whole sweep fast
 * while still exercising the full configure-run-report path of each
 * figure reproduction. CMake injects DIQ_BIN_DIR (the directory the
 * binaries are built into) and DIQ_BENCH_LIST / DIQ_EXAMPLE_LIST
 * (comma-separated names taken from the same lists that declare the
 * targets, so this sweep cannot drift out of sync with what is built).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace
{

/** Render a std::system wait status as something CI logs can act on. */
std::string
describeStatus(int rc)
{
    if (WIFEXITED(rc))
        return "exit code " + std::to_string(WEXITSTATUS(rc));
    if (WIFSIGNALED(rc))
        return "killed by signal " + std::to_string(WTERMSIG(rc));
    return "raw wait status " + std::to_string(rc);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= csv.size()) {
        auto comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

class BenchSmoke : public ::testing::TestWithParam<std::string>
{
  protected:
    static void SetUpTestSuite()
    {
        // Tiny budgets: enough to cover warm-up + measure + report.
        setenv("DIQ_INSTS", "2000", /*overwrite=*/1);
        setenv("DIQ_WARMUP", "200", /*overwrite=*/1);
    }
};

TEST_P(BenchSmoke, RunsAndExitsZero)
{
    const std::string binary = std::string(DIQ_BIN_DIR) + "/" + GetParam();
    // Quote against spaces in the build path; discard stdout (the
    // figure tables are long and uninteresting here).
    const std::string cmd = "'" + binary + "' > /dev/null";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1) << "failed to launch " << binary;
    EXPECT_EQ(rc, 0) << GetParam() << " failed: " << describeStatus(rc);
}

INSTANTIATE_TEST_SUITE_P(
    Benches, BenchSmoke,
    ::testing::ValuesIn(splitCsv(DIQ_BENCH_LIST)),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

INSTANTIATE_TEST_SUITE_P(
    Examples, BenchSmoke,
    ::testing::ValuesIn(splitCsv(DIQ_EXAMPLE_LIST)),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// diq_report drives the whole figure registry through the parallel
// sweep runner. Beyond exiting 0, its emitted files (per-figure
// CSV/JSON + RESULTS.md) must be byte-identical between a serial
// (--jobs=1) and a parallel (--jobs=4) run — the runner's determinism
// contract, checked here at the whole-binary level.
TEST(DiqReport, SerialAndParallelRunsEmitIdenticalFiles)
{
    const std::string binary = std::string(DIQ_BIN_DIR) + "/diq_report";
    const std::string serial_dir =
        std::string(DIQ_BIN_DIR) + "/report_smoke_serial";
    const std::string parallel_dir =
        std::string(DIQ_BIN_DIR) + "/report_smoke_parallel";

    // Stale files from an earlier registry (or an interrupted run)
    // must not leak into the diff below.
    int rc_clean = std::system(("rm -rf '" + serial_dir + "' '" +
                                parallel_dir + "'")
                                   .c_str());
    ASSERT_EQ(rc_clean, 0);

    // Tiny budgets via flags: gtest_discover_tests runs this test in
    // its own process, so BenchSmoke's env shrink does not apply.
    const std::string budget = " --insts=2000 --warmup=200";
    int rc = std::system(("'" + binary + "' --jobs=1" + budget +
                          " --outdir '" + serial_dir + "' > /dev/null")
                             .c_str());
    ASSERT_NE(rc, -1);
    ASSERT_EQ(rc, 0) << "serial diq_report failed: "
                     << describeStatus(rc);

    rc = std::system(("'" + binary + "' --jobs=4" + budget +
                      " --outdir '" + parallel_dir + "' > /dev/null")
                         .c_str());
    ASSERT_NE(rc, -1);
    ASSERT_EQ(rc, 0) << "parallel diq_report failed: "
                     << describeStatus(rc);

    rc = std::system(("diff -r '" + serial_dir + "' '" + parallel_dir +
                      "' > /dev/null")
                         .c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(rc, 0) << "diq_report output differs between --jobs=1"
                        " and --jobs=4: "
                     << describeStatus(rc);
}

TEST(DiqReport, RejectsUnknownFigureIds)
{
    const std::string cmd = "'" + std::string(DIQ_BIN_DIR) +
        "/diq_report' no_such_figure > /dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1);
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_EQ(WEXITSTATUS(rc), 1);
}

#ifdef DIQ_HAVE_BENCH_MICRO_SCHEMES
// The Google Benchmark microbench suite has its own timing loop; a
// listing run is enough to prove the binary links and starts cleanly.
TEST(BenchSmokeMicro, ListsAndExitsZero)
{
    const std::string cmd = "'" + std::string(DIQ_BIN_DIR) +
        "/bench_micro_schemes' --benchmark_list_tests=true > /dev/null";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(rc, 0);
}
#endif

} // namespace

/**
 * @file
 * Tests for the scoreboard, the CAM baseline and the IssueFIFO scheme
 * (steering heuristics, head-only issue, table clearing).
 */

#include <gtest/gtest.h>

#include "core/cam_issue_scheme.hh"
#include "core/fifo_issue_scheme.hh"
#include "power/events.hh"
#include "scheme_test_util.hh"

namespace
{

using namespace diq;
using namespace diq::core;
using diq::test::MiniMachine;
using trace::OpClass;
namespace ev = diq::power::ev;

// --- Scoreboard -----------------------------------------------------------

TEST(Scoreboard, ReadyCycleSemantics)
{
    Scoreboard sb(8);
    EXPECT_TRUE(sb.isReady(0, 0)); // boot: everything ready
    sb.markPending(0);
    EXPECT_FALSE(sb.isReady(0, 1000));
    EXPECT_FALSE(sb.isScheduled(0));
    sb.setReadyAt(0, 5);
    EXPECT_FALSE(sb.isReady(0, 4));
    EXPECT_TRUE(sb.isReady(0, 5));
    EXPECT_TRUE(sb.isScheduled(0));
}

TEST(Scoreboard, StoresOnlyNeedTheirAddress)
{
    Scoreboard sb(8);
    DynInst store;
    trace::MicroOp op;
    op.op = OpClass::Store;
    op.src1 = 1;
    op.src2 = 2;
    store.reset(op, 1);
    store.psrc1 = 1;
    store.psrc2 = 2;
    sb.markPending(2); // pending data
    EXPECT_FALSE(sb.operandsReady(store, 10));
    EXPECT_TRUE(sb.readyToIssue(store, 10));
    sb.markPending(1); // pending address too
    EXPECT_FALSE(sb.readyToIssue(store, 10));
}

TEST(Scoreboard, ResetRestoresBootState)
{
    Scoreboard sb(4);
    sb.markPending(3);
    sb.reset();
    EXPECT_TRUE(sb.isReady(3, 0));
}

// --- CAM baseline ------------------------------------------------------------

TEST(CamScheme, CapacityGatesDispatch)
{
    MiniMachine m;
    CamIssueScheme scheme(2, 2);
    auto *a = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    auto *b = m.make(OpClass::IntAlu, 2, -1, -1, 2);
    auto *c = m.make(OpClass::IntAlu, 3, -1, -1, 3);
    EXPECT_TRUE(m.dispatch(scheme, a));
    EXPECT_TRUE(m.dispatch(scheme, b));
    EXPECT_FALSE(m.dispatch(scheme, c)) << "integer queue is full";
    // The FP cluster has its own capacity.
    auto *f = m.make(OpClass::FpAdd, 33, -1, -1, 4);
    EXPECT_TRUE(m.dispatch(scheme, f));
    EXPECT_EQ(scheme.intOccupancy(), 2u);
    EXPECT_EQ(scheme.fpOccupancy(), 1u);
}

TEST(CamScheme, IssuesOutOfOrderWhenOldestBlocked)
{
    MiniMachine m;
    CamIssueScheme scheme(64, 64);
    m.scoreboard.markPending(10); // source never produced
    auto *blocked = m.make(OpClass::IntAlu, 1, 10, -1, 1);
    auto *ready = m.make(OpClass::IntAlu, 2, -1, -1, 2);
    m.dispatch(scheme, blocked);
    m.dispatch(scheme, ready);
    auto issued = m.step(scheme);
    ASSERT_EQ(issued.size(), 1u);
    EXPECT_EQ(issued[0], ready) << "younger ready inst bypasses";
}

TEST(CamScheme, OldestFirstAmongReady)
{
    MiniMachine m;
    CamIssueScheme scheme(64, 64);
    std::vector<DynInst *> all;
    for (uint64_t i = 0; i < 12; ++i)
        all.push_back(m.make(OpClass::IntAlu, -1, -1, -1, i + 1));
    for (auto *inst : all)
        m.dispatch(scheme, inst);
    auto issued = m.step(scheme);
    ASSERT_EQ(issued.size(), 8u) << "issue width per cluster";
    for (size_t i = 0; i < issued.size(); ++i)
        EXPECT_EQ(issued[i]->seq, i + 1);
    // Remaining four go next cycle.
    EXPECT_EQ(m.step(scheme).size(), 4u);
    EXPECT_EQ(scheme.occupancy(), 0u);
}

TEST(CamScheme, BackToBackDependentIssue)
{
    MiniMachine m;
    CamIssueScheme scheme(64, 64);
    auto *prod = m.make(OpClass::IntAlu, 5, -1, -1, 1);
    auto *cons = m.make(OpClass::IntAlu, 6, 5, -1, 2);
    m.dispatch(scheme, prod);
    m.dispatch(scheme, cons);
    auto first = m.step(scheme);
    ASSERT_EQ(first.size(), 1u); // producer only
    auto second = m.step(scheme);
    ASSERT_EQ(second.size(), 1u) << "1-cycle producer feeds consumer"
                                    " in the very next cycle";
    EXPECT_EQ(second[0], cons);
}

TEST(CamScheme, WakeupCountsArmedCellsOnly)
{
    MiniMachine m;
    CamIssueScheme scheme(64, 64);
    m.scoreboard.markPending(10);
    m.scoreboard.markPending(11);
    // Two entries with one pending source each; one with all-ready.
    m.dispatch(scheme, m.make(OpClass::IntAlu, 1, 10, -1, 1));
    m.dispatch(scheme, m.make(OpClass::IntAlu, 2, 10, 11, 2));
    m.dispatch(scheme, m.make(OpClass::IntAlu, 3, -1, -1, 3));
    auto ctx = m.ctx();
    scheme.onWakeup(10, ctx);
    EXPECT_EQ(m.counters.get(ev::WakeupBroadcasts), 1u)
        << "one broadcast into the single non-empty cluster";
    EXPECT_EQ(m.counters.get(ev::WakeupCamMatches), 3u)
        << "three unready operand cells armed";
}

TEST(CamScheme, Name)
{
    CamIssueScheme scheme(64, 64);
    EXPECT_EQ(scheme.name(), "IQ_64_64");
}

// --- IssueFIFO -----------------------------------------------------------------

SchemeConfig
smallFifoConfig()
{
    SchemeConfig cfg = SchemeConfig::issueFifo(2, 2, 2, 2);
    return cfg;
}

TEST(FifoScheme, DependentJoinsProducerQueue)
{
    MiniMachine m;
    FifoIssueScheme scheme(smallFifoConfig());
    auto *prod = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    auto *cons = m.make(OpClass::IntAlu, 2, 1, -1, 2);
    m.dispatch(scheme, prod);
    m.dispatch(scheme, cons);
    EXPECT_EQ(prod->queueId, cons->queueId)
        << "consumer placed behind its producer (tail match)";
}

TEST(FifoScheme, SecondOperandMatchUsedWhenFirstMisses)
{
    MiniMachine m;
    FifoIssueScheme scheme(SchemeConfig::issueFifo(4, 4, 2, 2));
    auto *prod = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    m.dispatch(scheme, prod);
    // src1 = 9 (no producer), src2 = 1 (prod at tail).
    auto *cons = m.make(OpClass::IntAlu, 2, 9, 1, 2);
    m.dispatch(scheme, cons);
    EXPECT_EQ(cons->queueId, prod->queueId);
}

TEST(FifoScheme, IndependentTakesEmptyFifoElseStalls)
{
    MiniMachine m;
    FifoIssueScheme scheme(smallFifoConfig()); // 2 int FIFOs
    auto *a = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    auto *b = m.make(OpClass::IntAlu, 2, -1, -1, 2);
    auto *c = m.make(OpClass::IntAlu, 3, -1, -1, 3);
    m.dispatch(scheme, a);
    m.dispatch(scheme, b);
    EXPECT_NE(a->queueId, b->queueId) << "independents spread out";
    EXPECT_FALSE(m.dispatch(scheme, c))
        << "no empty FIFO and no tail match: dispatch stalls";
}

TEST(FifoScheme, FullProducerQueueStallsSingleSourceInst)
{
    MiniMachine m;
    FifoIssueScheme scheme(smallFifoConfig()); // queues of size 2
    m.scoreboard.markPending(9);
    auto *a = m.make(OpClass::IntAlu, 1, 9, -1, 1); // blocked head
    auto *b = m.make(OpClass::IntAlu, 2, 1, -1, 2);
    m.dispatch(scheme, a);
    m.dispatch(scheme, b); // same queue, now full
    auto *c = m.make(OpClass::IntAlu, 3, 2, -1, 3);
    EXPECT_FALSE(m.dispatch(scheme, c))
        << "paper: producer queue full + one source -> stall";
}

TEST(FifoScheme, OnlyHeadsIssue)
{
    MiniMachine m;
    FifoIssueScheme scheme(SchemeConfig::issueFifo(4, 4, 2, 2));
    m.scoreboard.markPending(9);
    auto *head = m.make(OpClass::IntAlu, 1, 9, -1, 1); // not ready
    auto *behind = m.make(OpClass::IntAlu, 2, -1, -1, 2); // ready
    m.dispatch(scheme, head);
    // Force `behind` into the same FIFO via a fake dependence chain:
    // behind depends on head's dest.
    auto *behind2 = m.make(OpClass::IntAlu, 3, 1, -1, 3);
    m.dispatch(scheme, behind2);
    (void)behind;
    EXPECT_EQ(behind2->queueId, head->queueId);
    auto issued = m.step(scheme);
    EXPECT_TRUE(issued.empty())
        << "ready instruction behind a blocked head cannot issue";
}

TEST(FifoScheme, QueuesBeyondSixtyFourStillIssue)
{
    // Regression: the select stage used to gather queue heads into a
    // fixed heads[64] array, silently dropping queues 64+ from issue
    // consideration — instructions steered there were stuck forever.
    // 70 single-entry queues put the last six ops past that boundary.
    MiniMachine m;
    SchemeConfig cfg = SchemeConfig::issueFifo(70, 1, 1, 1);
    FifoIssueScheme scheme(cfg);
    for (uint64_t s = 1; s <= 70; ++s)
        ASSERT_TRUE(
            m.dispatch(scheme, m.make(OpClass::IntAlu, -1, -1, -1, s)));

    auto first = m.step(scheme);
    ASSERT_EQ(first.size(), 8u);
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i]->seq, i + 1) << "oldest-first across all queues";

    uint64_t issued = first.size();
    for (int c = 0; c < 20 && issued < 70; ++c)
        issued += m.step(scheme).size();
    EXPECT_EQ(issued, 70u) << "queues past index 63 must reach select";
    EXPECT_EQ(scheme.occupancy(), 0u);
}

TEST(FifoScheme, FifoDrainsInOrder)
{
    MiniMachine m;
    FifoIssueScheme scheme(SchemeConfig::issueFifo(2, 4, 2, 2));
    auto *a = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    auto *b = m.make(OpClass::IntAlu, 2, 1, -1, 2);
    auto *c = m.make(OpClass::IntAlu, 3, 2, -1, 3);
    for (auto *i : {a, b, c})
        m.dispatch(scheme, i);
    ASSERT_EQ(a->queueId, c->queueId);
    EXPECT_EQ(m.step(scheme).at(0), a);
    EXPECT_EQ(m.step(scheme).at(0), b);
    EXPECT_EQ(m.step(scheme).at(0), c);
}

TEST(FifoScheme, MispredictClearsSteeringTable)
{
    MiniMachine m;
    SchemeConfig cfg = smallFifoConfig();
    FifoIssueScheme scheme(cfg);
    auto *prod = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    m.dispatch(scheme, prod);
    auto ctx = m.ctx();
    scheme.onBranchMispredict(ctx);
    auto *cons = m.make(OpClass::IntAlu, 2, 1, -1, 2);
    m.dispatch(scheme, cons);
    EXPECT_NE(cons->queueId, prod->queueId)
        << "cleared table: consumer cannot find its producer";
}

TEST(FifoScheme, ClearingCanBeDisabled)
{
    MiniMachine m;
    SchemeConfig cfg = smallFifoConfig();
    cfg.clearTableOnMispredict = false;
    FifoIssueScheme scheme(cfg);
    auto *prod = m.make(OpClass::IntAlu, 1, -1, -1, 1);
    m.dispatch(scheme, prod);
    auto ctx = m.ctx();
    scheme.onBranchMispredict(ctx);
    auto *cons = m.make(OpClass::IntAlu, 2, 1, -1, 2);
    m.dispatch(scheme, cons);
    EXPECT_EQ(cons->queueId, prod->queueId);
}

TEST(FifoScheme, FpOpsRouteToFpCluster)
{
    MiniMachine m;
    FifoIssueScheme scheme(smallFifoConfig());
    auto *f = m.make(OpClass::FpAdd, 33, -1, -1, 1);
    auto *i = m.make(OpClass::Load, 1, -1, -1, 2);
    m.dispatch(scheme, f);
    m.dispatch(scheme, i);
    EXPECT_EQ(scheme.fpCluster().occupancy(), 1u);
    EXPECT_EQ(scheme.intCluster().occupancy(), 1u)
        << "loads are integer-cluster work";
}

TEST(FifoScheme, HeadsProbeReadyBitsEveryCycle)
{
    MiniMachine m;
    FifoIssueScheme scheme(smallFifoConfig());
    m.scoreboard.markPending(9);
    m.dispatch(scheme, m.make(OpClass::IntAlu, 1, 9, 9, 1));
    uint64_t before = m.counters.get(ev::RegsReadyReads);
    m.step(scheme);
    m.step(scheme);
    EXPECT_EQ(m.counters.get(ev::RegsReadyReads), before + 4)
        << "two operands probed per head per cycle";
}

TEST(FifoScheme, EnergyEventsEmitted)
{
    MiniMachine m;
    FifoIssueScheme scheme(smallFifoConfig());
    m.dispatch(scheme, m.make(OpClass::IntAlu, 1, 2, 3, 1));
    EXPECT_EQ(m.counters.get(ev::QrenameReads), 2u);
    EXPECT_EQ(m.counters.get(ev::QrenameWrites), 1u);
    EXPECT_EQ(m.counters.get(ev::FifoWrites), 1u);
    m.step(scheme);
    EXPECT_EQ(m.counters.get(ev::FifoReads), 1u);
    EXPECT_EQ(m.counters.get(ev::MuxIntAlu), 1u);
}

TEST(FifoScheme, Name)
{
    FifoIssueScheme scheme(SchemeConfig::issueFifo(8, 8, 8, 16));
    EXPECT_EQ(scheme.name(), "IssueFIFO_8x8_8x16");
    FifoIssueScheme distr(SchemeConfig::ifDistr());
    EXPECT_EQ(distr.name(), "IssueFIFO_8x8_8x16_distr");
}

} // namespace

/**
 * @file
 * Golden tests for the `diq` CLI (docs/ARCHITECTURE.md §8), at the
 * whole-binary level: `diq run` output must match what
 * runner::executeJob computes in-process for the same spec, `diq
 * sweep` CSV must match the in-process sweep rendering and be
 * byte-identical for every worker count, and `diq report` must stay
 * byte-identical to the legacy `diq_report` alias. POSIX-only, like
 * the bench smoke suite: binaries are driven through /bin/sh.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "runner/sweep_runner.hh"
#include "spec/experiment_spec.hh"

namespace
{

using namespace diq;

constexpr const char *kTinyBudget = " --insts 2000 --warmup 200";

std::string
binary(const std::string &name)
{
    return std::string(DIQ_BIN_DIR) + "/" + name;
}

/** Run a shell command, capturing stdout; EXPECTs on the exit code. */
std::string
capture(const std::string &cmd, int expect_rc = 0)
{
    std::string out;
    FILE *pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe)
        return out;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    int rc = pclose(pipe);
    EXPECT_TRUE(WIFEXITED(rc)) << cmd;
    EXPECT_EQ(WEXITSTATUS(rc), expect_rc) << cmd;
    return out;
}

// --- diq run --------------------------------------------------------

TEST(DiqCli, RunMatchesExecuteJobForTheSameSpec)
{
    spec::ExperimentSpec exp =
        spec::ExperimentSpec::parse("mb_distr bench=swim "
                                    "warmup_insts=200 "
                                    "measure_insts=2000");
    std::string expected = bench::renderRunOutput(
        exp, runner::executeJob(runner::makeJob(exp)));

    std::string actual = capture("'" + binary("diq") +
                                 "' run --spec mb_distr --bench swim" +
                                 kTinyBudget);
    EXPECT_EQ(actual, expected);

    // The same experiment written as positional spec tokens.
    std::string positional =
        capture("'" + binary("diq") +
                "' run mb_distr bench=swim warmup_insts=200 "
                "measure_insts=2000");
    EXPECT_EQ(positional, expected);
}

TEST(DiqCli, SpecTokensBeatEnvironmentFallbacks)
{
    // DIQ_INSTS/DIQ_WARMUP are fallbacks: an explicit budget token in
    // the spec text must win over them (only a --insts/--warmup flag
    // outranks the text).
    std::string out = capture(
        "DIQ_INSTS=3000 DIQ_WARMUP=300 '" + binary("diq") +
        "' run mb_distr bench=swim warmup_insts=200 "
        "measure_insts=2000");
    EXPECT_NE(out.find("measure_insts=2000"), std::string::npos) << out;
    EXPECT_NE(out.find("warmup_insts=200"), std::string::npos);

    // Without tokens or flags, the env fallback does apply.
    std::string env_only =
        capture("DIQ_INSTS=3000 DIQ_WARMUP=300 '" + binary("diq") +
                "' run mb_distr bench=swim");
    EXPECT_NE(env_only.find("measure_insts=3000"), std::string::npos);

    // And an explicit flag outranks both.
    std::string flagged = capture(
        "DIQ_INSTS=3000 '" + binary("diq") +
        "' run mb_distr bench=swim measure_insts=2000 --insts 1500 "
        "--warmup 150");
    EXPECT_NE(flagged.find("measure_insts=1500"), std::string::npos);
}

TEST(DiqCli, RunHonorsPerKeyOverrides)
{
    // The override must actually reach the simulation: a chain-starved
    // MixBUFF cannot behave identically to the 8-chain preset.
    std::string base = capture("'" + binary("diq") +
                               "' run mb_distr bench=swim" + kTinyBudget);
    std::string starved =
        capture("'" + binary("diq") +
                "' run mb_distr chains_per_queue=1 bench=swim" +
                kTinyBudget);
    EXPECT_NE(base, starved);
    EXPECT_NE(starved.find("chains_per_queue=1"), std::string::npos);
}

// --- diq sweep ------------------------------------------------------

TEST(DiqCli, SweepMatchesInProcessSweepAndIsJobCountInvariant)
{
    const std::string grid = "scheme=iq6464,mb_distr bench=gcc,swim";

    runner::RunnerOptions opts;
    opts.warmupInsts = 200;
    opts.measureInsts = 2000;
    opts.jobs = 1;
    runner::SweepRunner r(opts);
    auto parsed = runner::SweepSpec::fromText(grid);
    std::string expected =
        bench::renderSweepCsv(parsed, opts, r.runAll(parsed));

    std::string serial = capture("'" + binary("diq") + "' sweep '" +
                                 grid + "' --jobs 1" + kTinyBudget);
    std::string parallel = capture("'" + binary("diq") + "' sweep '" +
                                   grid + "' --jobs 4" + kTinyBudget);
    EXPECT_EQ(serial, expected);
    EXPECT_EQ(parallel, expected);
}

TEST(DiqCli, SweepSpecColumnReproducesTheRow)
{
    // Each CSV row's final `spec` column is a complete experiment:
    // feeding it back through `diq run --spec` must reproduce the row.
    std::string csv =
        capture("'" + binary("diq") +
                "' sweep 'mb_distr chains=2,4 bench=swim' --jobs 1" +
                kTinyBudget);
    std::istringstream lines(csv);
    std::string header, row;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, row));

    // scheme,benchmark,ipc,cycles,committed,energy_pj,spec
    std::vector<std::string> cells;
    std::istringstream cellstream(row);
    std::string cell;
    while (std::getline(cellstream, cell, ','))
        cells.push_back(cell);
    ASSERT_EQ(cells.size(), 7u) << row;
    const std::string &cycles = cells[3];
    const std::string &line_spec = cells[6];
    EXPECT_NE(line_spec.find("chains_per_queue=2"), std::string::npos);

    std::string rerun = capture("'" + binary("diq") + "' run --spec '" +
                                line_spec + "'");
    EXPECT_NE(rerun.find(cycles), std::string::npos)
        << "spec column did not reproduce cycles=" << cycles << ":\n"
        << rerun;
}

// --- diq report vs the diq_report alias -----------------------------

TEST(DiqCli, ReportIsByteIdenticalToTheDiqReportAlias)
{
    const std::string sub_dir = std::string(DIQ_BIN_DIR) + "/cli_report";
    const std::string alias_dir =
        std::string(DIQ_BIN_DIR) + "/cli_report_alias";
    ASSERT_EQ(std::system(("rm -rf '" + sub_dir + "' '" + alias_dir +
                           "'")
                              .c_str()),
              0);

    // A two-figure subset keeps the smoke fast; both invocations see
    // identical figure ids, budgets and worker counts.
    const std::string args = std::string(" table1 fig13 --jobs 2") +
        kTinyBudget;
    capture("'" + binary("diq") + "' report" + args + " --outdir '" +
            sub_dir + "'");
    capture("'" + binary("diq_report") + "'" + args + " --outdir '" +
            alias_dir + "'");

    int rc = std::system(
        ("diff -r '" + sub_dir + "' '" + alias_dir + "' > /dev/null")
            .c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(rc, 0)
        << "`diq report` and `diq_report` output trees differ";
}

// --- diq list -------------------------------------------------------

TEST(DiqCli, ListShowsTheWholeVocabulary)
{
    std::string out = capture("'" + binary("diq") + "' list");
    for (const char *needle :
         {"mb_distr", "iq6464", "swim", "gcc", "rob_size",
          "chains_per_queue", "clear_table_on_mispredict", "fig08",
          "table1"})
        EXPECT_NE(out.find(needle), std::string::npos) << needle;

    // Scoped listing: only the requested section.
    std::string keys = capture("'" + binary("diq") + "' list keys");
    EXPECT_NE(keys.find("rob_size"), std::string::npos);
    EXPECT_EQ(keys.find("Baseline: two 64-entry"), std::string::npos);
}

// --- Error paths ----------------------------------------------------

TEST(DiqCli, PreciseErrorsExitNonZero)
{
    capture("'" + binary("diq") + "'", 1);
    capture("'" + binary("diq") + "' frobnicate", 1);
    capture("'" + binary("diq") + "' run bogus_key=3", 1);
    capture("'" + binary("diq") + "' run rob_size=0", 1);
    capture("'" + binary("diq") + "' sweep", 1);
    capture("'" + binary("diq") + "' list nonsense", 1);

    // Budget flags and env vars go through the same validation as
    // spec tokens.
    capture("DIQ_INSTS=-3 '" + binary("diq") +
            "' run mb_distr bench=swim", 1);
    capture("DIQ_WARMUP=banana '" + binary("diq") +
            "' run mb_distr bench=swim", 1);
    capture("'" + binary("diq") + "' run mb_distr bench=swim"
            " --insts -3", 1);
    capture("'" + binary("diq") + "' run mb_distr bench=swim"
            " --insts 0", 1);
    capture("'" + binary("diq") + "' run mb_distr bench=swim"
            " --warmup banana", 1);
    capture("'" + binary("diq") +
            "' sweep 'iq6464 chains=2 chains=4 bench=swim'", 1);
    capture("'" + binary("diq") + "' sweep 'iq6464 bench=swim'"
            " --insts -3", 1);
    capture("DIQ_INSTS=banana '" + binary("diq") +
            "' sweep 'iq6464 bench=swim'", 1);

    // And the message names the offender.
    std::string msg = capture("'" + binary("diq") +
                                  "' run bogus_key=3 2>&1 >/dev/null | "
                                  "cat",
                              0);
    EXPECT_NE(msg.find("unknown key 'bogus_key'"), std::string::npos);
}

} // namespace

/**
 * @file
 * Golden tests for the `diq` CLI (docs/ARCHITECTURE.md §8), at the
 * whole-binary level: `diq run` output must match what
 * runner::executeJob computes in-process for the same spec, `diq
 * sweep` CSV must match the in-process sweep rendering and be
 * byte-identical for every worker count, and `diq report` must stay
 * byte-identical to the legacy `diq_report` alias. POSIX-only, like
 * the bench smoke suite: binaries are driven through /bin/sh.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "runner/sweep_runner.hh"
#include "spec/experiment_spec.hh"

namespace
{

using namespace diq;

constexpr const char *kTinyBudget = " --insts 2000 --warmup 200";

std::string
binary(const std::string &name)
{
    return std::string(DIQ_BIN_DIR) + "/" + name;
}

/** Run a shell command, capturing stdout; EXPECTs on the exit code. */
std::string
capture(const std::string &cmd, int expect_rc = 0)
{
    std::string out;
    FILE *pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe)
        return out;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    int rc = pclose(pipe);
    EXPECT_TRUE(WIFEXITED(rc)) << cmd;
    EXPECT_EQ(WEXITSTATUS(rc), expect_rc) << cmd;
    return out;
}

// --- diq run --------------------------------------------------------

TEST(DiqCli, RunMatchesExecuteJobForTheSameSpec)
{
    spec::ExperimentSpec exp =
        spec::ExperimentSpec::parse("mb_distr bench=swim "
                                    "warmup_insts=200 "
                                    "measure_insts=2000");
    std::string expected = bench::renderRunOutput(
        exp, runner::executeJob(runner::makeJob(exp)));

    std::string actual = capture("'" + binary("diq") +
                                 "' run --spec mb_distr --bench swim" +
                                 kTinyBudget);
    EXPECT_EQ(actual, expected);

    // The same experiment written as positional spec tokens.
    std::string positional =
        capture("'" + binary("diq") +
                "' run mb_distr bench=swim warmup_insts=200 "
                "measure_insts=2000");
    EXPECT_EQ(positional, expected);
}

TEST(DiqCli, SpecTokensBeatEnvironmentFallbacks)
{
    // DIQ_INSTS/DIQ_WARMUP are fallbacks: an explicit budget token in
    // the spec text must win over them (only a --insts/--warmup flag
    // outranks the text).
    std::string out = capture(
        "DIQ_INSTS=3000 DIQ_WARMUP=300 '" + binary("diq") +
        "' run mb_distr bench=swim warmup_insts=200 "
        "measure_insts=2000");
    EXPECT_NE(out.find("measure_insts=2000"), std::string::npos) << out;
    EXPECT_NE(out.find("warmup_insts=200"), std::string::npos);

    // Without tokens or flags, the env fallback does apply.
    std::string env_only =
        capture("DIQ_INSTS=3000 DIQ_WARMUP=300 '" + binary("diq") +
                "' run mb_distr bench=swim");
    EXPECT_NE(env_only.find("measure_insts=3000"), std::string::npos);

    // And an explicit flag outranks both.
    std::string flagged = capture(
        "DIQ_INSTS=3000 '" + binary("diq") +
        "' run mb_distr bench=swim measure_insts=2000 --insts 1500 "
        "--warmup 150");
    EXPECT_NE(flagged.find("measure_insts=1500"), std::string::npos);
}

TEST(DiqCli, RunHonorsPerKeyOverrides)
{
    // The override must actually reach the simulation: a chain-starved
    // MixBUFF cannot behave identically to the 8-chain preset.
    std::string base = capture("'" + binary("diq") +
                               "' run mb_distr bench=swim" + kTinyBudget);
    std::string starved =
        capture("'" + binary("diq") +
                "' run mb_distr chains_per_queue=1 bench=swim" +
                kTinyBudget);
    EXPECT_NE(base, starved);
    EXPECT_NE(starved.find("chains_per_queue=1"), std::string::npos);
}

// --- diq sweep ------------------------------------------------------

TEST(DiqCli, SweepMatchesInProcessSweepAndIsJobCountInvariant)
{
    const std::string grid = "scheme=iq6464,mb_distr bench=gcc,swim";

    runner::RunnerOptions opts;
    opts.warmupInsts = 200;
    opts.measureInsts = 2000;
    opts.jobs = 1;
    runner::SweepRunner r(opts);
    auto parsed = runner::SweepSpec::fromText(grid);
    std::string expected = bench::renderSweepCsv(
        parsed, opts, r.runAllSupervised(parsed, nullptr));

    std::string serial = capture("'" + binary("diq") + "' sweep '" +
                                 grid + "' --jobs 1" + kTinyBudget);
    std::string parallel = capture("'" + binary("diq") + "' sweep '" +
                                   grid + "' --jobs 4" + kTinyBudget);
    EXPECT_EQ(serial, expected);
    EXPECT_EQ(parallel, expected);
}

TEST(DiqCli, SweepSpecColumnReproducesTheRow)
{
    // Each CSV row's final `spec` column is a complete experiment:
    // feeding it back through `diq run --spec` must reproduce the row.
    std::string csv =
        capture("'" + binary("diq") +
                "' sweep 'mb_distr chains=2,4 bench=swim' --jobs 1" +
                kTinyBudget);
    std::istringstream lines(csv);
    std::string header, row;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, row));

    // scheme,benchmark,ipc,cycles,committed,energy_pj,status,spec
    std::vector<std::string> cells;
    std::istringstream cellstream(row);
    std::string cell;
    while (std::getline(cellstream, cell, ','))
        cells.push_back(cell);
    ASSERT_EQ(cells.size(), 8u) << row;
    const std::string &cycles = cells[3];
    EXPECT_EQ(cells[6], "ok") << row;
    const std::string &line_spec = cells[7];
    EXPECT_NE(line_spec.find("chains_per_queue=2"), std::string::npos);

    std::string rerun = capture("'" + binary("diq") + "' run --spec '" +
                                line_spec + "'");
    EXPECT_NE(rerun.find(cycles), std::string::npos)
        << "spec column did not reproduce cycles=" << cycles << ":\n"
        << rerun;
}

// --- diq sweep --store / --resume / fault injection -----------------

TEST(DiqCli, RunWithStoreReplaysByteIdenticallyOnTheSecondRun)
{
    const std::string dir = std::string(DIQ_BIN_DIR) + "/cli_run_store";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);

    const std::string cmd = "'" + binary("diq") +
        "' run mb_distr bench=swim" + kTinyBudget + " --store '" + dir +
        "'";
    std::string computed = capture(cmd);
    std::string replayed = capture(cmd);
    EXPECT_EQ(replayed, computed)
        << "a store hit must render byte-identically to the run that "
           "produced it";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiqCli, SweepResumesByteIdenticallyAfterAnInjectedCrash)
{
    const std::string dir =
        std::string(DIQ_BIN_DIR) + "/cli_store_crash";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
    const std::string grid = "scheme=iq6464,mb_distr bench=gcc,swim";
    const std::string base = "'" + binary("diq") + "' sweep '" + grid +
        "' --jobs 1" + kTinyBudget;

    // The reference CSV of an uninterrupted, storeless sweep.
    std::string reference = capture(base);

    // The campaign dies deterministically at its 2nd store commit —
    // fault::kCrashExitCode (42), no cleanup, like a SIGKILL.
    capture(base + " --store '" + dir +
                "' --fault-plan 'crash_after_rename=:2'",
            42);

    // Resume: completed points replay from disk, the rest recompute;
    // the CSV must be byte-identical to the uninterrupted run.
    std::string resumed =
        capture(base + " --store '" + dir + "' --resume");
    EXPECT_EQ(resumed, reference);

    // The warm store verifies clean and lists only valid entries.
    std::string verify = capture("'" + binary("diq") +
                                 "' cache verify --store '" + dir + "'");
    EXPECT_NE(verify.find("4 valid, 0 corrupt"), std::string::npos)
        << verify;
    std::string listed = capture("'" + binary("diq") +
                                 "' cache list --store '" + dir + "'");
    EXPECT_NE(listed.find("valid"), std::string::npos) << listed;
    EXPECT_EQ(listed.find("checksum_mismatch"), std::string::npos)
        << listed;
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiqCli, SweepResumesByteIdenticallyAfterSigkill)
{
    const std::string dir =
        std::string(DIQ_BIN_DIR) + "/cli_store_sigkill";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
    const std::string grid = "scheme=iq6464,mb_distr bench=gcc,swim";
    const std::string base = "'" + binary("diq") + "' sweep '" + grid +
        "' --jobs 1" + kTinyBudget;

    std::string reference = capture(base);

    // A real SIGKILL mid-campaign: injected per-job delays hold the
    // sweep open long enough to die with some (possibly zero, possibly
    // all) points committed — resume must be byte-identical either
    // way, so the test tolerates the race by construction.
    std::string killed = capture(
        "sh -c \"" + base + " --store '" + dir +
        "' --fault-plan 'delay_job=:300' & pid=\\$!; sleep 0.5; "
        "kill -9 \\$pid 2>/dev/null; wait \\$pid; echo rc=\\$?\"");
    EXPECT_NE(killed.find("rc="), std::string::npos) << killed;

    std::string resumed =
        capture(base + " --store '" + dir + "' --resume");
    EXPECT_EQ(resumed, reference);
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiqCli, PoisonJobsQuarantineAndTheSweepCompletesPartially)
{
    const std::string dir =
        std::string(DIQ_BIN_DIR) + "/cli_store_poison";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
    const std::string base = "'" + binary("diq") +
        "' sweep 'scheme=iq6464 bench=gcc,swim' --jobs 1" + kTinyBudget +
        " --max-attempts 2 --backoff-ms 1";

    // Every attempt of the swim job fails -> poison -> exit 3, and the
    // CSV still carries one row per grid point with the reason.
    std::string csv = capture(base + " --store '" + dir +
                                  "' --fault-plan 'fail_job=swim:9'",
                              bench::kExitPartialSweep);
    EXPECT_NE(csv.find("failed: injected failure"), std::string::npos)
        << csv;
    EXPECT_NE(csv.find("ok"), std::string::npos) << csv;

    // Resume skips the journaled poison job (no fault plan now — the
    // job would succeed if retried, but the journal says skip) and the
    // sweep still reports partial completion.
    std::string resumed =
        capture(base + " --store '" + dir + "' --resume",
                bench::kExitPartialSweep);
    EXPECT_EQ(resumed, csv)
        << "a resumed partial sweep must render the same CSV";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiqCli, CorruptedEntriesAreDetectedQuarantinedAndRecomputed)
{
    const std::string dir =
        std::string(DIQ_BIN_DIR) + "/cli_store_corrupt";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
    const std::string base = "'" + binary("diq") +
        "' sweep 'scheme=iq6464 bench=gcc' --jobs 1" + kTinyBudget;

    std::string reference = capture(base);

    // A fresh campaign whose entry is bit-flipped right after its
    // commit (byte 40 lands in the checksummed payload). The sweep
    // itself is clean — it rendered from the in-memory result — but
    // the store now holds a corrupt entry.
    capture(base + " --store '" + dir +
            "' --fault-plan 'corrupt_entry_byte=:40'");
    std::string verify = capture("'" + binary("diq") +
                                     "' cache verify --store '" + dir +
                                     "'",
                                 bench::kExitRuntime);
    EXPECT_NE(verify.find("corrupt"), std::string::npos) << verify;

    // The quarantined entry is gone from the live store; a resumed
    // sweep recomputes it and renders identically.
    std::string resumed =
        capture(base + " --store '" + dir + "' --resume");
    EXPECT_EQ(resumed, reference);

    // gc removes the quarantine debris; the store then verifies clean.
    std::string gc = capture("'" + binary("diq") +
                             "' cache gc --store '" + dir + "'");
    EXPECT_NE(gc.find("quarantined"), std::string::npos) << gc;
    capture("'" + binary("diq") + "' cache verify --store '" + dir +
            "'");
    ASSERT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

// --- diq record / trace replay --------------------------------------

TEST(DiqCli, RecordThenReplayReproducesTheRunByteForByte)
{
    const std::string trace_path =
        std::string(DIQ_BIN_DIR) + "/cli_record.diqt";
    std::remove(trace_path.c_str());

    // `diq record` doubles as a run: its stdout is the run output.
    std::string recorded =
        capture("'" + binary("diq") + "' record mb_distr bench=swim" +
                kTinyBudget + " --out '" + trace_path + "'");
    std::string live = capture("'" + binary("diq") +
                               "' run mb_distr bench=swim" +
                               kTinyBudget);
    EXPECT_EQ(recorded, live)
        << "record must report exactly what run reports";

    // The replay differs from the live run only in the bench token.
    std::string replay =
        capture("'" + binary("diq") + "' run mb_distr 'bench=trace:" +
                trace_path + "'" + kTinyBudget);
    auto scrub = [&](const std::string &s) {
        // Drop the lines naming the workload (spec echo + result-table
        // row) and normalize column padding (the wider trace: name
        // stretches the benchmark column for every table line).
        std::string out;
        std::istringstream lines(s);
        std::string line;
        while (std::getline(lines, line)) {
            std::string norm;
            bool in_space = false;
            for (char c : line) {
                if (c == ' ') {
                    if (!in_space)
                        norm += ' ';
                    in_space = true;
                } else {
                    norm += c;
                    in_space = false;
                }
            }
            if (norm.find("swim") == std::string::npos &&
                norm.find(trace_path) == std::string::npos &&
                norm.find("---") == std::string::npos)
                out += norm + "\n";
        }
        return out;
    };
    EXPECT_EQ(scrub(replay), scrub(live))
        << "replayed counters/IPC must match the live run";

    std::remove(trace_path.c_str());
}

TEST(DiqCli, RecordRequiresAnOutputPath)
{
    capture("'" + binary("diq") + "' record mb_distr bench=swim" +
                kTinyBudget,
            bench::kExitUsage);
}

TEST(DiqCli, RecordRefusesToOverwriteTheTraceBeingReplayed)
{
    // `--out` onto the replay input would ios::trunc the file mid-read
    // and destroy it; re-recording to a *different* path is fine.
    const std::string path =
        std::string(DIQ_BIN_DIR) + "/cli_selfrecord.diqt";
    capture("'" + binary("diq") + "' record mb_distr bench=swim" +
            kTinyBudget + " --out '" + path + "'");
    std::string msg =
        capture("'" + binary("diq") + "' record mb_distr "
                "'bench=trace:" + path + "'" + kTinyBudget +
                " --out '" + path + "' 2>&1 >/dev/null | cat");
    EXPECT_NE(msg.find("destroy the input"), std::string::npos) << msg;
    capture("'" + binary("diq") + "' record mb_distr 'bench=trace:" +
                path + "'" + kTinyBudget + " --out '" + path + "'",
            bench::kExitUsage);
    // The input survived and still replays.
    capture("'" + binary("diq") + "' run mb_distr 'bench=trace:" +
            path + "'" + kTinyBudget);
    std::remove(path.c_str());
}

TEST(DiqCli, ScenarioWorkloadsRunFromTheCli)
{
    std::string out =
        capture("'" + binary("diq") +
                "' run iq6464 bench=scenario:chain_storm" + kTinyBudget);
    EXPECT_NE(out.find("bench=scenario:chain_storm"),
              std::string::npos);
    std::string phased =
        capture("'" + binary("diq") +
                "' run iq6464 'bench=scenario:phased:gcc+swim@500'" +
                kTinyBudget);
    EXPECT_NE(phased.find("phased:gcc+swim@500"), std::string::npos);
}

TEST(DiqCli, MalformedTraceInputsExitNonZeroWithTheMessage)
{
    const std::string bad_path =
        std::string(DIQ_BIN_DIR) + "/cli_bad.diqt";

    // Missing file.
    capture("'" + binary("diq") +
                "' run iq6464 bench=trace:/no/such/file.diqt" +
                kTinyBudget,
            1);
    std::string msg =
        capture("'" + binary("diq") +
                    "' run iq6464 bench=trace:/no/such/file.diqt" +
                    kTinyBudget + " 2>&1 >/dev/null | cat",
                0);
    EXPECT_NE(msg.find("cannot open file"), std::string::npos) << msg;

    // Not a .diqt file at all.
    {
        std::ofstream os(bad_path, std::ios::binary);
        os << "not a trace\n";
    }
    std::string magic =
        capture("'" + binary("diq") + "' run iq6464 'bench=trace:" +
                    bad_path + "'" + kTinyBudget +
                    " 2>&1 >/dev/null | cat",
                0);
    EXPECT_NE(magic.find("bad magic"), std::string::npos) << magic;
    capture("'" + binary("diq") + "' run iq6464 'bench=trace:" +
                bad_path + "'" + kTinyBudget,
            1);
    std::remove(bad_path.c_str());

    // Bad workload tokens die in spec parsing, before any simulation
    // — exit 5 (spec error), unlike the runtime trace failures above.
    capture("'" + binary("diq") + "' run bench=scenario:doom3",
            bench::kExitBadSpec);
    capture("'" + binary("diq") + "' run bench=trace:",
            bench::kExitBadSpec);
    capture("'" + binary("diq") +
                "' sweep 'iq6464 bench=scenario:doom3'",
            bench::kExitBadSpec);
}

// --- diq report vs the diq_report alias -----------------------------

TEST(DiqCli, ReportIsByteIdenticalToTheDiqReportAlias)
{
    const std::string sub_dir = std::string(DIQ_BIN_DIR) + "/cli_report";
    const std::string alias_dir =
        std::string(DIQ_BIN_DIR) + "/cli_report_alias";
    ASSERT_EQ(std::system(("rm -rf '" + sub_dir + "' '" + alias_dir +
                           "'")
                              .c_str()),
              0);

    // A two-figure subset keeps the smoke fast; both invocations see
    // identical figure ids, budgets and worker counts.
    const std::string args = std::string(" table1 fig13 --jobs 2") +
        kTinyBudget;
    capture("'" + binary("diq") + "' report" + args + " --outdir '" +
            sub_dir + "'");
    capture("'" + binary("diq_report") + "'" + args + " --outdir '" +
            alias_dir + "'");

    int rc = std::system(
        ("diff -r '" + sub_dir + "' '" + alias_dir + "' > /dev/null")
            .c_str());
    ASSERT_NE(rc, -1);
    EXPECT_EQ(rc, 0)
        << "`diq report` and `diq_report` output trees differ";
}

// --- diq list -------------------------------------------------------

TEST(DiqCli, ListShowsTheWholeVocabulary)
{
    std::string out = capture("'" + binary("diq") + "' list");
    for (const char *needle :
         {"mb_distr", "iq6464", "swim", "gcc", "rob_size",
          "chains_per_queue", "clear_table_on_mispredict", "fig08",
          "table1", "chain_storm", "steer_flip"})
        EXPECT_NE(out.find(needle), std::string::npos) << needle;

    // Scoped listing: only the requested section.
    std::string keys = capture("'" + binary("diq") + "' list keys");
    EXPECT_NE(keys.find("rob_size"), std::string::npos);
    EXPECT_EQ(keys.find("Baseline: two 64-entry"), std::string::npos);
}

TEST(DiqCli, ListScenariosShowsTheCatalog)
{
    // Both the positional and the bare-flag spellings work.
    for (const char *form : {"list scenarios", "list --scenarios"}) {
        std::string out =
            capture("'" + binary("diq") + "' " + form);
        for (const char *needle :
             {"chain_storm", "steer_flip", "lsq_pressure",
              "branch_churn", "icache_walk", "bursty", "phased:"})
            EXPECT_NE(out.find(needle), std::string::npos)
                << form << ": " << needle;
        // Scoped: no scheme/figure sections.
        EXPECT_EQ(out.find("fig08"), std::string::npos) << form;
    }
}

// --- Error paths ----------------------------------------------------

// --- diq serve / submit / status / shutdown -------------------------

/** Strip trailing newlines (shell command substitutions). */
std::string
chomp(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

/**
 * Launch `diq serve` detached and block until it answers on the
 * socket (`diq status` polls the full connect + handshake path).
 * Returns the server's pid.
 */
std::string
startServe(const std::string &sock, const std::string &dir,
           const std::string &extra = "")
{
    std::string pid =
        chomp(capture("'" + binary("diq") + "' serve --socket '" +
                      sock + "' --store '" + dir + "' " + extra +
                      " >/dev/null 2>&1 & echo $!"));
    EXPECT_FALSE(pid.empty());
    std::string ready = capture(
        "n=0; until '" + binary("diq") + "' status --socket '" + sock +
        "' >/dev/null 2>&1; do n=$((n+1)); "
        "[ $n -ge 100 ] && { echo DOWN; exit 0; }; sleep 0.1; done; "
        "echo UP");
    EXPECT_NE(ready.find("UP"), std::string::npos)
        << "server did not come up on " << sock;
    return pid;
}

/** One live-counter value out of `diq status` output (k=v lines). */
std::string
statusValue(const std::string &statusOut, const std::string &key)
{
    std::istringstream lines(statusOut);
    std::string line;
    while (std::getline(lines, line))
        if (line.rfind(key + "=", 0) == 0)
            return line.substr(key.size() + 1);
    return "";
}

TEST(DiqServe, SubmitColdThenWarmMatchesServerlessSweepByteForByte)
{
    const std::string dir = std::string(DIQ_BIN_DIR) + "/srv_store_a";
    const std::string sock = std::string(DIQ_BIN_DIR) + "/srv_a.sock";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
    const std::string grid = "scheme=iq6464,mb_distr bench=gcc,swim";

    // The reference: a serverless sweep of the same grid and budgets.
    std::string reference = capture("'" + binary("diq") + "' sweep '" +
                                    grid + "' --jobs 1" + kTinyBudget);

    startServe(sock, dir, "--jobs 2");

    // Cold submit: the server computes every point; the client's CSV
    // must be byte-identical to the serverless run.
    std::string cold = capture("'" + binary("diq") +
                               "' submit --socket '" + sock + "' '" +
                               grid + "'" + kTinyBudget);
    EXPECT_EQ(cold, reference);

    // Warm resubmit: pure store hits, zero new compute.
    std::string warm = capture("'" + binary("diq") +
                               "' submit --socket '" + sock + "' '" +
                               grid + "'" + kTinyBudget);
    EXPECT_EQ(warm, reference);

    std::string status = capture("'" + binary("diq") +
                                 "' status --socket '" + sock + "'");
    EXPECT_EQ(statusValue(status, "computed"), "4") << status;
    EXPECT_EQ(statusValue(status, "store_hits"), "4") << status;
    EXPECT_EQ(statusValue(status, "store_entries"), "4") << status;

    // `diq cache stats` sees the same store offline (shared read) and
    // the live counters through the socket.
    std::string stats = capture("'" + binary("diq") +
                                "' cache stats --store '" + dir +
                                "' --socket '" + sock + "'");
    EXPECT_EQ(statusValue(stats, "entries"), "4") << stats;
    EXPECT_EQ(statusValue(stats, "server.computed"), "4") << stats;
    EXPECT_NE(statusValue(stats, "lock_holder_pid"), "") << stats;

    capture("'" + binary("diq") + "' shutdown --socket '" + sock + "'");
    // The socket stops answering once the server exits.
    capture("n=0; while '" + binary("diq") + "' status --socket '" +
            sock + "' >/dev/null 2>&1; do n=$((n+1)); "
            "[ $n -ge 100 ] && exit 0; sleep 0.1; done; echo GONE");
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
}

TEST(DiqServe, ConcurrentClientsOnOneGridComputeEachPointOnce)
{
    const std::string dir = std::string(DIQ_BIN_DIR) + "/srv_store_b";
    const std::string sock = std::string(DIQ_BIN_DIR) + "/srv_b.sock";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
    // The acceptance grid: 8 points, two clients at once.
    const std::string grid =
        "scheme=iq6464,mb_distr bench=gcc,swim,mcf,equake";
    const std::string outA = dir + "-a.csv";
    const std::string outB = dir + "-b.csv";

    std::string reference = capture("'" + binary("diq") + "' sweep '" +
                                    grid + "' --jobs 2" + kTinyBudget);

    startServe(sock, dir, "--jobs 4");
    std::string submitBase = "'" + binary("diq") + "' submit --socket '" +
        sock + "' '" + grid + "'" + kTinyBudget;
    capture(submitBase + " --out '" + outA + "' >/dev/null 2>&1 & "
            "p1=$!; " + submitBase + " --out '" + outB +
            "' >/dev/null 2>&1 & p2=$!; wait $p1 && wait $p2 && "
            "echo BOTH_OK");

    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    EXPECT_EQ(slurp(outA), reference);
    EXPECT_EQ(slurp(outB), reference);

    // 16 submitted points, at most 8 simulations: overlapping work
    // was served by the store or attached to the in-flight twin.
    std::string status = capture("'" + binary("diq") +
                                 "' status --socket '" + sock + "'");
    EXPECT_EQ(statusValue(status, "computed"), "8") << status;

    capture("'" + binary("diq") + "' shutdown --socket '" + sock + "'");
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "' '" +
                           outA + "' '" + outB + "'")
                              .c_str()),
              0);
}

TEST(DiqServe, FullBacklogRejectsSubmitWithTheBusyExitCode)
{
    const std::string dir = std::string(DIQ_BIN_DIR) + "/srv_store_c";
    const std::string sock = std::string(DIQ_BIN_DIR) + "/srv_c.sock";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);

    // One worker, backlog of one, slow jobs: the 4-point grid cannot
    // be admitted and must be rejected with the documented exit 6.
    startServe(sock, dir,
               "--jobs 1 --pending-max 1 "
               "--fault-plan 'delay_job=:400'");
    capture("'" + binary("diq") + "' submit --socket '" + sock +
                "' 'scheme=iq6464 bench=gcc,swim,mcf,equake'" +
                kTinyBudget,
            bench::kExitServerBusy);

    capture("'" + binary("diq") + "' shutdown --socket '" + sock + "'");
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
}

TEST(DiqServe, ServerHoldsTheStoreLockAgainstConcurrentWriters)
{
    const std::string dir = std::string(DIQ_BIN_DIR) + "/srv_store_d";
    const std::string sock = std::string(DIQ_BIN_DIR) + "/srv_d.sock";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
    startServe(sock, dir);

    // A concurrent writer on the same store is refused (exit 1, the
    // StoreError names the live holder)...
    capture("'" + binary("diq") +
                "' sweep 'scheme=iq6464 bench=gcc' --store '" + dir +
                "'" + kTinyBudget,
            bench::kExitRuntime);
    // ...as is a second server...
    capture("'" + binary("diq") + "' serve --socket '" + sock +
                ".2' --store '" + dir + "'",
            bench::kExitRuntime);
    // ...while the lock-free shared readers still work.
    capture("'" + binary("diq") + "' cache stats --store '" + dir + "'");
    capture("'" + binary("diq") + "' cache list --store '" + dir + "'");

    capture("'" + binary("diq") + "' shutdown --socket '" + sock + "'");
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
}

TEST(DiqServe, SigkilledServerRecoversTheCampaignAndResubmitMatches)
{
    const std::string dir = std::string(DIQ_BIN_DIR) + "/srv_store_e";
    const std::string sock = std::string(DIQ_BIN_DIR) + "/srv_e.sock";
    const std::string refCsv = dir + "-ref.csv";
    const std::string outCsv = dir + "-out.csv";
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "'").c_str()),
              0);
    const std::string grid = "scheme=iq6464,mb_distr bench=gcc,swim";

    std::string reference = capture("'" + binary("diq") + "' sweep '" +
                                    grid + "' --jobs 1" + kTinyBudget +
                                    " --out '" + refCsv + "'");

    // A slow server, SIGKILLed mid-campaign: one worker at 500 ms per
    // job cannot finish 4 points before the kill lands at 0.7 s, so
    // the journal holds a `begin` with no `end` and the store holds a
    // prefix of the points.
    std::string pid = startServe(sock, dir,
                                 "--jobs 1 "
                                 "--fault-plan 'delay_job=:500'");
    capture("'" + binary("diq") + "' submit --socket '" + sock +
            "' '" + grid + "'" + kTinyBudget +
            " >/dev/null 2>&1 & sleep 0.7; kill -9 " + pid +
            "; echo KILLED");

    // Restart on the same store: startup recovery replays the open
    // campaign (completed points are store hits, the rest compute),
    // so a resubmitting client finds a fully warm store.
    startServe(sock, dir);
    std::string resubmitted = capture(
        "'" + binary("diq") + "' submit --socket '" + sock + "' '" +
        grid + "'" + kTinyBudget + " --out '" + outCsv + "'");
    EXPECT_EQ(resubmitted, reference);
    std::string cmp =
        capture("cmp '" + refCsv + "' '" + outCsv + "' && echo SAME");
    EXPECT_NE(cmp.find("SAME"), std::string::npos)
        << "CSV must be cmp-identical to the serverless sweep";

    std::string status = capture("'" + binary("diq") +
                                 "' status --socket '" + sock + "'");
    EXPECT_EQ(statusValue(status, "recovered_campaigns"), "1")
        << status;
    EXPECT_EQ(statusValue(status, "store_entries"), "4") << status;

    capture("'" + binary("diq") + "' shutdown --socket '" + sock + "'");
    ASSERT_EQ(std::system(("rm -rf '" + dir + "' '" + sock + "' '" +
                           refCsv + "' '" + outCsv + "'")
                              .c_str()),
              0);
}

TEST(DiqCli, ErrorsFollowTheDocumentedExitCodeTaxonomy)
{
    // Usage errors: 4.
    capture("'" + binary("diq") + "'", bench::kExitUsage);
    capture("'" + binary("diq") + "' frobnicate", bench::kExitUsage);
    capture("'" + binary("diq") + "' sweep", bench::kExitUsage);
    capture("'" + binary("diq") + "' list nonsense", bench::kExitUsage);
    capture("'" + binary("diq") + "' cache frobnicate",
            bench::kExitUsage);
    capture("'" + binary("diq") + "' serve", bench::kExitUsage);
    capture("'" + binary("diq") + "' submit 'iq6464 bench=swim'",
            bench::kExitUsage);
    capture("'" + binary("diq") + "' status", bench::kExitUsage);
    capture("'" + binary("diq") + "' shutdown", bench::kExitUsage);

    // Runtime errors: 1 (no server listening on the socket).
    capture("'" + binary("diq") +
                "' status --socket /tmp/diq-no-such-server.sock",
            bench::kExitRuntime);
    capture("'" + binary("diq") + "' fuzz --seeds banana",
            bench::kExitUsage);
    capture("'" + binary("diq") +
                "' sweep 'iq6464 bench=swim' --resume",
            bench::kExitUsage);
    capture("'" + binary("diq") +
                "' sweep 'iq6464 bench=swim' --max-attempts 0",
            bench::kExitUsage);
    capture("'" + binary("diq") +
                "' sweep 'iq6464 bench=swim' --fault-plan frobnicate=1",
            bench::kExitUsage);

    // Spec/grid parse errors: 5.
    capture("'" + binary("diq") + "' run bogus_key=3",
            bench::kExitBadSpec);
    capture("'" + binary("diq") + "' run rob_size=0",
            bench::kExitBadSpec);

    // Budget flags and env vars go through the same validation as
    // spec tokens, so they are spec errors too.
    capture("DIQ_INSTS=-3 '" + binary("diq") +
            "' run mb_distr bench=swim", bench::kExitBadSpec);
    capture("DIQ_WARMUP=banana '" + binary("diq") +
            "' run mb_distr bench=swim", bench::kExitBadSpec);
    capture("'" + binary("diq") + "' run mb_distr bench=swim"
            " --insts -3", bench::kExitBadSpec);
    capture("'" + binary("diq") + "' run mb_distr bench=swim"
            " --insts 0", bench::kExitBadSpec);
    capture("'" + binary("diq") + "' run mb_distr bench=swim"
            " --warmup banana", bench::kExitBadSpec);
    capture("'" + binary("diq") +
            "' sweep 'iq6464 chains=2 chains=4 bench=swim'",
            bench::kExitBadSpec);
    capture("'" + binary("diq") + "' sweep 'iq6464 bench=swim'"
            " --insts -3", bench::kExitBadSpec);
    capture("DIQ_INSTS=banana '" + binary("diq") +
            "' sweep 'iq6464 bench=swim'", bench::kExitBadSpec);

    // And the message names the offender.
    std::string msg = capture("'" + binary("diq") +
                                  "' run bogus_key=3 2>&1 >/dev/null | "
                                  "cat",
                              0);
    EXPECT_NE(msg.find("unknown key 'bogus_key'"), std::string::npos);
}

} // namespace

/**
 * @file
 * Tests for src/power: array-model monotonicity, breakdown accounting
 * and the normalized efficiency metrics (ED / ED^2 with the 23% chip
 * share assumption).
 */

#include <gtest/gtest.h>

#include "power/cacti_model.hh"
#include "power/energy_model.hh"
#include "power/events.hh"
#include "power/metrics.hh"

namespace
{

using namespace diq;
using namespace diq::power;

TEST(CactiModel, SwitchEnergyQuadraticInV)
{
    EXPECT_DOUBLE_EQ(switchEnergyPj(1000.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(switchEnergyPj(1000.0, 2.0), 4.0);
    EXPECT_DOUBLE_EQ(switchEnergyPj(0.0, 1.0), 0.0);
}

TEST(CactiModel, RamEnergyGrowsWithEntries)
{
    RamArray small(8, 32);
    RamArray big(64, 32);
    EXPECT_LT(small.readEnergy(), big.readEnergy());
    EXPECT_LT(small.writeEnergy(), big.writeEnergy());
}

TEST(CactiModel, RamEnergyGrowsWithWidthAndPorts)
{
    RamArray narrow(16, 8);
    RamArray wide(16, 80);
    EXPECT_LT(narrow.readEnergy(), wide.readEnergy());
    RamArray one_port(16, 32, 1);
    RamArray many_ports(16, 32, 8);
    EXPECT_LT(one_port.readEnergy(), many_ports.readEnergy());
}

TEST(CactiModel, DegenerateArraysAreSafe)
{
    RamArray zero(0, 0, 0);
    EXPECT_GT(zero.readEnergy(), 0.0);
    EXPECT_EQ(zero.entries(), 1u);
}

TEST(CactiModel, CamBroadcastScalesWithHeight)
{
    CamArray small(8, 9);
    CamArray big(64, 9);
    EXPECT_LT(small.broadcastEnergy(), big.broadcastEnergy());
    // Match energy is per armed cell, independent of array height.
    EXPECT_DOUBLE_EQ(small.matchEnergy(), big.matchEnergy());
}

TEST(CactiModel, CamSearchCostsMoreThanSmallRamRead)
{
    // The whole point of the paper: a 64-entry CAM broadcast is far
    // more expensive than a FIFO/RAM access of issue-queue scale.
    CamArray cam(64, 9);
    RamArray fifo(8, 80, 1);
    EXPECT_GT(cam.broadcastEnergy(), fifo.readEnergy());
}

TEST(CactiModel, SelectionTreeZeroWhenIdle)
{
    SelectionTree tree(64, 8);
    EXPECT_DOUBLE_EQ(tree.selectEnergy(0), 0.0);
    EXPECT_GT(tree.selectEnergy(1), 0.0);
    EXPECT_LT(tree.selectEnergy(1), tree.selectEnergy(8));
}

TEST(CactiModel, CrossbarShrinksWhenDistributed)
{
    CrossbarModel central(8, 8, 80);
    CrossbarModel direct(1, 1, 80);
    EXPECT_GT(central.transferEnergy(), 4.0 * direct.transferEnergy());
}

TEST(CactiModel, LatchEnergyLinearInBits)
{
    EXPECT_NEAR(latchEnergyPj(80), 2.0 * latchEnergyPj(40), 1e-12);
}

// --- EnergyBreakdown ------------------------------------------------------

TEST(Breakdown, TotalAndShares)
{
    EnergyBreakdown b;
    b.components.emplace_back("a", 30.0);
    b.components.emplace_back("b", 70.0);
    EXPECT_DOUBLE_EQ(b.total(), 100.0);
    EXPECT_DOUBLE_EQ(b.get("a"), 30.0);
    EXPECT_DOUBLE_EQ(b.get("missing"), 0.0);
    EXPECT_DOUBLE_EQ(b.share("b"), 0.7);
}

TEST(Breakdown, EmptyIsSafe)
{
    EnergyBreakdown b;
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
    EXPECT_DOUBLE_EQ(b.share("x"), 0.0);
}

// --- IssueEnergyModel ------------------------------------------------------

power::EventCounters
syntheticCounters()
{
    using namespace diq::power::ev;
    power::EventCounters c;
    c.add(WakeupBroadcasts, 1000);
    c.add(WakeupCamMatches, 20000);
    c.add(IqBuffWrites, 1000);
    c.add(IqBuffReads, 1000);
    c.add(IqSelectRequests, 1500);
    c.add(QrenameReads, 1800);
    c.add(QrenameWrites, 900);
    c.add(FifoWrites, 700);
    c.add(FifoReads, 700);
    c.add(BuffWrites, 300);
    c.add(BuffReads, 300);
    c.add(RegsReadyReads, 20000);
    c.add(RegsReadyWrites, 900);
    c.add(SelectRequests, 4000);
    c.add(ChainSweeps, 5000);
    c.add(RegLatches, 2500);
    c.add(MuxIntAlu, 600);
    c.add(MuxIntMul, 30);
    c.add(MuxFpAlu, 200);
    c.add(MuxFpMul, 170);
    return c;
}

TEST(EnergyModel, BaselineComponentsMatchFigure9Legend)
{
    IssueEnergyModel m;
    auto b = m.baseline(syntheticCounters());
    EXPECT_GT(b.get("wakeup"), 0.0);
    EXPECT_GT(b.get("buff"), 0.0);
    EXPECT_GT(b.get("select"), 0.0);
    EXPECT_GT(b.get("MuxIntALU"), 0.0);
    EXPECT_DOUBLE_EQ(b.get("fifo"), 0.0);
    // Wakeup dominates, as in Figure 9.
    EXPECT_GT(b.share("wakeup"), 0.4);
}

TEST(EnergyModel, IssueFifoComponentsMatchFigure10Legend)
{
    IssueEnergyModel m;
    auto b = m.issueFifo(syntheticCounters());
    EXPECT_GT(b.get("Qrename"), 0.0);
    EXPECT_GT(b.get("fifo"), 0.0);
    EXPECT_GT(b.get("regs_ready"), 0.0);
    EXPECT_DOUBLE_EQ(b.get("wakeup"), 0.0);
    // Distributed FUs: Mux is negligible.
    EXPECT_LT(b.get("MuxIntALU") / b.total(), 0.1);
}

TEST(EnergyModel, MixBuffAddsChainMachinery)
{
    IssueEnergyModel m;
    auto b = m.mixBuff(syntheticCounters());
    for (const char *name : {"Qrename", "fifo", "buff", "regs_ready",
                             "select", "chains", "reg"}) {
        EXPECT_GT(b.get(name), 0.0) << name;
    }
}

TEST(EnergyModel, DistributedSchemesBeatBaselinePerEvent)
{
    IssueEnergyModel m;
    auto c = syntheticCounters();
    EXPECT_LT(m.issueFifo(c).total(), m.baseline(c).total());
    EXPECT_LT(m.mixBuff(c).total(), m.baseline(c).total());
}

// --- Metrics ------------------------------------------------------------------

TEST(Metrics, SelfComparisonIsUnity)
{
    RunEnergy r{1000.0, 500, 1000};
    auto n = normalizedEfficiency(r, r);
    EXPECT_DOUBLE_EQ(n.iqPower, 1.0);
    EXPECT_DOUBLE_EQ(n.iqEnergy, 1.0);
    EXPECT_DOUBLE_EQ(n.chipEd, 1.0);
    EXPECT_DOUBLE_EQ(n.chipEd2, 1.0);
    EXPECT_DOUBLE_EQ(n.ipcRatio, 1.0);
}

TEST(Metrics, SlowerSchemePaysInDelayTerms)
{
    RunEnergy base{1000.0, 500, 1000};
    RunEnergy slow{250.0, 650, 1000}; // 1/4 IQ energy, 30% slower
    auto n = normalizedEfficiency(slow, base);
    EXPECT_LT(n.iqEnergy, 0.3);
    EXPECT_LT(n.chipEd, 1.3);
    EXPECT_GT(n.chipEd2, n.chipEd); // delay squared punishes more
    EXPECT_NEAR(n.ipcRatio, 500.0 / 650.0, 1e-12);
}

TEST(Metrics, ChipEnergyUsesShareAssumption)
{
    RunEnergy base{230.0, 100, 100};
    // Chip energy = IQ / 0.23 for the baseline itself.
    EXPECT_NEAR(chipEnergyPj(base, base), 1000.0, 1e-9);
    // A scheme with zero IQ energy still carries rest-of-chip energy.
    RunEnergy zero{0.0, 100, 100};
    EXPECT_NEAR(chipEnergyPj(zero, base), 770.0, 1e-9);
}

TEST(Metrics, EdMathHandCheck)
{
    RunEnergy base{230.0, 100, 100};
    RunEnergy s{115.0, 120, 100}; // half IQ energy, 20% slower
    auto n = normalizedEfficiency(s, base);
    // chip_s = 770 + 115 = 885; ED_s = 885*120; ED_b = 1000*100.
    EXPECT_NEAR(n.chipEd, 885.0 * 120 / (1000.0 * 100), 1e-12);
    EXPECT_NEAR(n.chipEd2, 885.0 * 120 * 120 / (1000.0 * 100 * 100),
                1e-12);
}

TEST(Metrics, DegenerateInputsReturnZeros)
{
    RunEnergy bad{0.0, 0, 0};
    auto n = normalizedEfficiency(bad, bad);
    EXPECT_DOUBLE_EQ(n.chipEd, 0.0);
}

} // namespace

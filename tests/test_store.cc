/**
 * @file
 * Tests for the crash-safe persistence and supervision layers
 * (docs/ARCHITECTURE.md §11): the entry codec, the corruption
 * contract (every mutilated entry is detected, quarantined and
 * transparently recomputed — never served), the fault-plan grammar
 * and crash probes, the retry/backoff/deadline supervisor, and the
 * sweep campaign journal behind `diq sweep --resume`.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <unistd.h>

#include "fault/fault_plan.hh"
#include "runner/sim_job.hh"
#include "runner/supervisor.hh"
#include "runner/sweep_runner.hh"
#include "runner/sweep_spec.hh"
#include "spec/experiment_spec.hh"
#include "store/result_store.hh"

namespace
{

using namespace diq;
namespace fs = std::filesystem;

/** Fresh scratch directory per test, removed by the fixture. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
            (std::string("diq_store_") + info->name());
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

/** A result with distinctive values in every serialized field. */
runner::SimResult
sampleResult()
{
    runner::SimResult r;
    r.benchmark = "swim";
    r.scheme = "MB_distr";
    r.ipc = 3.14159265358979; // non-trivial mantissa: bit-exactness
    r.stats.cycles = 123456;
    r.stats.committed = 654321;
    r.stats.fetched = 700000;
    r.stats.dispatched = 690000;
    r.stats.issuedOps = 660000;
    r.stats.branches = 12345;
    r.stats.mispredicts = 678;
    r.stats.loads = 22222;
    r.stats.stores = 11111;
    r.stats.dispatchStallCycles = 1000;
    r.stats.windowStallCycles = 2000;
    r.stats.fetchStallCycles = 3000;
    r.stats.schemeOccupancySum = 444444;
    r.stats.robOccupancySum = 555555;
    r.stats.deadlocked = false;
    r.stats.counters.add(power::EventId::WakeupBroadcasts, 42);
    r.stats.counters.add(power::EventId::QrenameReads, 7);
    r.energy.components = {{"wakeup", 1.25},
                           {"select", 0.0625},
                           {"payload", 1e-7}};
    return r;
}

void
expectEqualResults(const runner::SimResult &a, const runner::SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.ipc, b.ipc); // doubles travel as bit patterns
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.committed, b.stats.committed);
    EXPECT_EQ(a.stats.fetched, b.stats.fetched);
    EXPECT_EQ(a.stats.dispatched, b.stats.dispatched);
    EXPECT_EQ(a.stats.issuedOps, b.stats.issuedOps);
    EXPECT_EQ(a.stats.branches, b.stats.branches);
    EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
    EXPECT_EQ(a.stats.loads, b.stats.loads);
    EXPECT_EQ(a.stats.stores, b.stats.stores);
    EXPECT_EQ(a.stats.dispatchStallCycles, b.stats.dispatchStallCycles);
    EXPECT_EQ(a.stats.windowStallCycles, b.stats.windowStallCycles);
    EXPECT_EQ(a.stats.fetchStallCycles, b.stats.fetchStallCycles);
    EXPECT_EQ(a.stats.schemeOccupancySum, b.stats.schemeOccupancySum);
    EXPECT_EQ(a.stats.robOccupancySum, b.stats.robOccupancySum);
    EXPECT_EQ(a.stats.deadlocked, b.stats.deadlocked);
    EXPECT_TRUE(a.stats.counters == b.stats.counters);
    EXPECT_EQ(a.energy.components, b.energy.components);
}

/** A small, fast real job for the supervisor tests. */
runner::SimJob
tinyJob(const std::string &bench = "swim")
{
    spec::ExperimentSpec exp = spec::ExperimentSpec::parse(
        "scheme=iq6464 bench=" + bench +
        " warmup_insts=100 measure_insts=500");
    return runner::makeJob(exp);
}

// --- Entry codec ----------------------------------------------------

TEST_F(StoreTest, CodecRoundTripsEveryFieldBitExactly)
{
    runner::SimResult in = sampleResult();
    std::string bytes = store::encodeEntry("some key=1 bench=swim", in);

    std::string key;
    runner::SimResult out;
    ASSERT_EQ(store::decodeEntry(bytes, key, out),
              store::EntryStatus::Valid);
    EXPECT_EQ(key, "some key=1 bench=swim");
    expectEqualResults(out, in);
}

TEST_F(StoreTest, SaveThenLoadAcrossInstancesIsAHit)
{
    runner::SimResult in = sampleResult();
    const std::string key = "scheme=mb_distr bench=swim";
    {
        store::ResultStore st(dir_);
        st.save(key, in);
    }
    store::ResultStore st(dir_);
    auto hit = st.load(key);
    ASSERT_TRUE(hit.has_value());
    expectEqualResults(*hit, in);
    EXPECT_EQ(st.hits(), 1u);
    EXPECT_EQ(st.misses(), 0u);
    EXPECT_FALSE(st.load("scheme=other bench=gcc").has_value());
    EXPECT_EQ(st.misses(), 1u);
}

TEST_F(StoreTest, SaveOverwritesThePreviousEntryForTheKey)
{
    store::ResultStore st(dir_);
    runner::SimResult first = sampleResult();
    st.save("k", first);
    runner::SimResult second = sampleResult();
    second.ipc = 1.5;
    second.stats.cycles = 99;
    st.save("k", second);
    auto hit = st.load("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ipc, 1.5);
    EXPECT_EQ(hit->stats.cycles, 99u);
    EXPECT_EQ(st.list().size(), 1u);
}

TEST_F(StoreTest, ExecutedJobRoundTripsThroughTheStoreBitExactly)
{
    // The property `diq sweep --resume` rests on: a stored real result
    // re-renders exactly like the run that produced it.
    runner::SimJob job = tinyJob();
    runner::SimResult computed = runner::executeJob(job);
    store::ResultStore st(dir_);
    st.save(job.key(), computed);
    auto loaded = st.load(job.key());
    ASSERT_TRUE(loaded.has_value());
    expectEqualResults(*loaded, computed);
}

// --- Corruption contract --------------------------------------------

struct Mutation
{
    const char *name;
    store::EntryStatus expected;
    std::function<void(std::string &)> apply; ///< mutate entry bytes
};

TEST_F(StoreTest, EveryCorruptionIsDetectedQuarantinedAndRecomputed)
{
    const std::vector<Mutation> mutations = {
        {"zero_length", store::EntryStatus::Empty,
         [](std::string &b) { b.clear(); }},
        {"bad_magic", store::EntryStatus::BadMagic,
         [](std::string &b) { b[0] ^= 0x01; }},
        {"version_skew", store::EntryStatus::VersionSkew,
         [](std::string &b) { b[4] ^= 0x01; }},
        {"schema_skew", store::EntryStatus::SchemaSkew,
         [](std::string &b) { b[6] ^= 0x01; }},
        {"truncated_header", store::EntryStatus::Truncated,
         [](std::string &b) { b.resize(10); }},
        {"truncated_payload", store::EntryStatus::Truncated,
         [](std::string &b) { b.resize(b.size() - 5); }},
        {"payload_bit_flip", store::EntryStatus::ChecksumMismatch,
         [](std::string &b) { b[b.size() / 2] ^= 0x40; }},
        {"checksum_field_flip", store::EntryStatus::ChecksumMismatch,
         [](std::string &b) { b[16] ^= 0x01; }},
        {"trailing_garbage", store::EntryStatus::TrailingGarbage,
         [](std::string &b) { b += "extra"; }},
    };

    for (const Mutation &m : mutations) {
        SCOPED_TRACE(m.name);
        fs::path root = dir_ / m.name;
        const std::string key = "scheme=iq6464 bench=gcc";
        runner::SimResult in = sampleResult();

        std::string bytes = store::encodeEntry(key, in);
        m.apply(bytes);

        // The codec classifies the damage precisely...
        std::string decodedKey;
        runner::SimResult decoded;
        EXPECT_EQ(store::decodeEntry(bytes, decodedKey, decoded),
                  m.expected);

        // ...and the store never serves it: the load is a miss, the
        // file moves to quarantine/ with the reason in its name.
        store::ResultStore st(root);
        fs::path entry =
            root / "entries" / store::ResultStore::fileNameFor(key, 0);
        {
            std::ofstream os(entry, std::ios::binary | std::ios::trunc);
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
        }
        EXPECT_FALSE(st.load(key).has_value());
        EXPECT_EQ(st.corrupt(), 1u);
        EXPECT_FALSE(fs::exists(entry));
        bool quarantined = false;
        for (const auto &de :
             fs::directory_iterator(root / "quarantine")) {
            std::string name = de.path().filename().string();
            if (name.find(store::entryStatusName(m.expected)) !=
                std::string::npos)
                quarantined = true;
        }
        EXPECT_TRUE(quarantined)
            << "no quarantine file names the reason";

        // Transparent recompute: a fresh save+load works again.
        st.save(key, in);
        auto hit = st.load(key);
        ASSERT_TRUE(hit.has_value());
        expectEqualResults(*hit, in);
    }
}

TEST_F(StoreTest, VerifyQuarantinesCorruptEntriesAndReportsCounts)
{
    store::ResultStore st(dir_);
    runner::SimResult r = sampleResult();
    st.save("key one", r);
    st.save("key two", r);
    st.save("key three", r);

    // Flip one payload byte of "key two" on disk.
    fs::path victim = dir_ / "entries" /
        store::ResultStore::fileNameFor("key two", 0);
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(0, std::ios::end);
        auto size = static_cast<int64_t>(f.tellg());
        f.seekg(size / 2);
        char c = static_cast<char>(f.get());
        f.seekp(size / 2);
        f.put(static_cast<char>(c ^ 0x10));
    }

    auto report = st.verify();
    EXPECT_EQ(report.valid, 2u);
    EXPECT_EQ(report.corrupt, 1u);
    EXPECT_FALSE(fs::exists(victim));

    // A second verify is clean, and the untouched keys still load.
    auto clean = st.verify();
    EXPECT_EQ(clean.valid, 2u);
    EXPECT_EQ(clean.corrupt, 0u);
    EXPECT_TRUE(st.load("key one").has_value());
    EXPECT_TRUE(st.load("key three").has_value());
    EXPECT_FALSE(st.load("key two").has_value());
}

TEST_F(StoreTest, GcRemovesQuarantineAndOrphanTempDebris)
{
    store::ResultStore st(dir_);
    st.save("k", sampleResult());

    // Manufacture debris: a quarantined file and an orphan temp.
    {
        std::ofstream(dir_ / "quarantine" / "h00-0.diqr.bad_magic")
            << "junk";
        std::ofstream(dir_ / "entries" / ".h00-0.diqr.tmp.1234.5")
            << "torn";
    }
    auto report = st.gc();
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.orphanTmp, 1u);
    EXPECT_GT(report.bytes, 0u);
    EXPECT_TRUE(st.load("k").has_value()) << "gc touched a valid entry";

    auto again = st.gc();
    EXPECT_EQ(again.quarantined + again.orphanTmp, 0u);
}

// --- FaultPlan ------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryProbeAndRejectsMalformedClauses)
{
    fault::FaultPlan plan = fault::FaultPlan::parse(
        "fail_job=swim:2 delay_job=:50 crash_before_rename=gcc "
        "crash_after_rename=:3 corrupt_entry_byte=swim:-4");
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(plan.shouldFailJob("bench=swim x"));
    EXPECT_TRUE(plan.shouldFailJob("bench=swim x"));
    EXPECT_FALSE(plan.shouldFailJob("bench=swim x")) << "k=2 exhausted";
    EXPECT_FALSE(plan.shouldFailJob("bench=gcc"));
    EXPECT_EQ(plan.jobDelayMs("anything"), 50u);
    ASSERT_TRUE(plan.corruptOffset("bench=swim").has_value());
    EXPECT_EQ(*plan.corruptOffset("bench=swim"), -4);
    EXPECT_FALSE(plan.corruptOffset("bench=gcc").has_value());

    EXPECT_TRUE(fault::FaultPlan::parse("").empty());
    EXPECT_TRUE(fault::FaultPlan{}.empty());

    for (const char *bad :
         {"frobnicate=1", "fail_job=swim", "fail_job=swim:0",
          "fail_job=swim:banana", "delay_job=x", "delay_job=x:0",
          "corrupt_entry_byte=x", "crash_before_rename=x:0", "noequals"})
        EXPECT_THROW(fault::FaultPlan::parse(bad), fault::PlanError)
            << bad;
}

/** Thrown by test crash handlers so an injected crash unwinds
 *  instead of calling std::_Exit. */
struct InjectedCrash
{
    std::string what;
};

TEST_F(StoreTest, CrashBeforeRenameLeavesNoEntryOnlyTempDebris)
{
    fault::FaultPlan plan =
        fault::FaultPlan::parse("crash_before_rename=");
    plan.setCrashHandler([](const std::string &what) {
        throw InjectedCrash{what};
    });

    store::ResultStore st(dir_, &plan);
    EXPECT_THROW(st.save("k", sampleResult()), InjectedCrash);
    EXPECT_FALSE(st.load("k").has_value())
        << "a pre-rename crash must not publish an entry";

    // The torn temp file is the only debris, and gc reclaims it.
    auto report = st.gc();
    EXPECT_GE(report.orphanTmp, 1u);
}

TEST_F(StoreTest, CrashAfterRenameLeavesADurableValidEntry)
{
    fault::FaultPlan plan = fault::FaultPlan::parse("crash_after_rename=");
    plan.setCrashHandler(
        [](const std::string &what) { throw InjectedCrash{what}; });

    runner::SimResult in = sampleResult();
    {
        store::ResultStore st(dir_, &plan);
        EXPECT_THROW(st.save("k", in), InjectedCrash);
    }
    // A new process (instance) sees the committed entry, intact.
    store::ResultStore st(dir_);
    auto hit = st.load("k");
    ASSERT_TRUE(hit.has_value());
    expectEqualResults(*hit, in);
}

TEST_F(StoreTest, CorruptEntryByteProbeFlipsTheCommittedFile)
{
    fault::FaultPlan plan =
        fault::FaultPlan::parse("corrupt_entry_byte=:30");
    store::ResultStore st(dir_, &plan);
    st.save("k", sampleResult());
    EXPECT_FALSE(st.load("k").has_value())
        << "the post-commit flip must be caught by the checksum";
    EXPECT_EQ(st.corrupt(), 1u);
}

// --- Supervisor -----------------------------------------------------

runner::JobPolicy
fastPolicy(unsigned maxAttempts)
{
    runner::JobPolicy p;
    p.maxAttempts = maxAttempts;
    p.backoffBaseMs = 1;
    return p;
}

TEST(SupervisorTest, RetriesPastInjectedFailuresAndCountsAttempts)
{
    fault::FaultPlan plan = fault::FaultPlan::parse("fail_job=swim:2");
    runner::Supervised s =
        runner::superviseJob(tinyJob(), fastPolicy(3), &plan);
    EXPECT_EQ(s.attempts, 3u) << "two injected failures, then success";
    EXPECT_EQ(s.result.benchmark, "swim");
    EXPECT_GT(s.result.stats.cycles, 0u);
}

TEST(SupervisorTest, ExhaustedAttemptsQuarantineWithSanitizedError)
{
    fault::FaultPlan plan = fault::FaultPlan::parse("fail_job=swim:99");
    try {
        runner::superviseJob(tinyJob(), fastPolicy(2), &plan);
        FAIL() << "expected JobQuarantined";
    } catch (const runner::JobQuarantined &q) {
        EXPECT_EQ(q.attempts, 2u);
        EXPECT_NE(q.error.find("injected failure"), std::string::npos);
        EXPECT_EQ(q.error.find(','), std::string::npos)
            << "error text must be CSV-safe";
        EXPECT_EQ(q.key, tinyJob().key());
    }
}

TEST(SupervisorTest, DeadlineTurnsASlowJobIntoQuarantine)
{
    fault::FaultPlan plan = fault::FaultPlan::parse("delay_job=:200");
    runner::JobPolicy policy = fastPolicy(2);
    policy.deadlineMs = 20;
    try {
        runner::superviseJob(tinyJob(), policy, &plan);
        FAIL() << "expected JobQuarantined";
    } catch (const runner::JobQuarantined &q) {
        EXPECT_NE(q.error.find("deadline exceeded"), std::string::npos)
            << q.error;
    }

    // The same delayed job is fine without a deadline.
    fault::FaultPlan slow = fault::FaultPlan::parse("delay_job=:30");
    runner::Supervised s =
        runner::superviseJob(tinyJob(), fastPolicy(1), &slow);
    EXPECT_EQ(s.attempts, 1u);
}

TEST(SupervisorTest, DeadlineAbandonedThreadsAreDrainedCleanly)
{
    // A deadline-expired attempt is truly abandoned: superviseJob
    // returns (quarantine) while the overrunning worker thread parks
    // on the process-wide reaper, and drainSupervisor joins it.
    fault::FaultPlan plan = fault::FaultPlan::parse("delay_job=:500");
    runner::JobPolicy policy = fastPolicy(1);
    policy.deadlineMs = 20;
    EXPECT_THROW(runner::superviseJob(tinyJob(), policy, &plan),
                 runner::JobQuarantined);
    // The injected delay honors cancellation, so the abandoned thread
    // unwinds promptly — but it may still be parked right now.
    runner::drainSupervisor();
    EXPECT_EQ(runner::abandonedThreadCount(), 0u);
    // Idempotent with nothing parked.
    runner::drainSupervisor();
    EXPECT_EQ(runner::abandonedThreadCount(), 0u);
}

TEST_F(StoreTest, StoreLockIsExclusiveWhileHeldAndReleasedAfter)
{
    {
        store::StoreLock first(dir_);
        EXPECT_TRUE(fs::exists(dir_ / "LOCK"));
        EXPECT_EQ(store::StoreLock::holderPid(dir_),
                  static_cast<long>(::getpid()));
        try {
            store::StoreLock second(dir_);
            FAIL() << "expected StoreError: lock is held";
        } catch (const store::StoreError &e) {
            EXPECT_NE(std::string(e.what()).find(
                          std::to_string(::getpid())),
                      std::string::npos)
                << "error must name the live holder: " << e.what();
        }
    }
    // RAII release: a later writer acquires without contention.
    EXPECT_FALSE(fs::exists(dir_ / "LOCK"));
    EXPECT_NO_THROW(store::StoreLock third(dir_));
}

TEST_F(StoreTest, StaleLockFromADeadPidIsTakenOver)
{
    fs::create_directories(dir_);
    {
        // A plausible-but-dead pid: the maximum pid namespace value
        // is far below this, so kill() reports ESRCH.
        std::ofstream lock(dir_ / "LOCK");
        lock << 999999999 << "\n";
    }
    EXPECT_EQ(store::StoreLock::holderPid(dir_), 999999999L);
    // A SIGKILLed writer's lock must not wedge the store forever.
    store::StoreLock takeover(dir_);
    EXPECT_EQ(store::StoreLock::holderPid(dir_),
              static_cast<long>(::getpid()));
}

TEST_F(StoreTest, GarbledLockFileIsTreatedAsStale)
{
    fs::create_directories(dir_);
    {
        std::ofstream lock(dir_ / "LOCK");
        lock << "not a pid";
    }
    EXPECT_EQ(store::StoreLock::holderPid(dir_), 0L);
    EXPECT_NO_THROW(store::StoreLock takeover(dir_));
}

TEST_F(StoreTest, StatsSizesEntriesQuarantineAndOrphans)
{
    store::ResultStore st(dir_);
    auto empty = st.stats();
    EXPECT_EQ(empty.entries, 0u);
    EXPECT_EQ(empty.quarantined, 0u);

    runner::SimResult r = sampleResult();
    st.save("k1", r);
    st.save("k2", r);
    // One corrupt entry (quarantined on load) and one orphan temp.
    st.save("k3", r);
    fs::path k3 = dir_ / "entries" / store::ResultStore::fileNameFor("k3", 0);
    {
        std::fstream f(k3, std::ios::in | std::ios::out |
                               std::ios::binary);
        f.seekp(6);
        f.put('\xff');
    }
    EXPECT_FALSE(st.load("k3").has_value());
    {
        std::ofstream tmp(dir_ / "entries" / ".orphan.tmp.123");
        tmp << "debris";
    }

    auto s = st.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_GT(s.entryBytes, 0u);
    EXPECT_EQ(s.quarantined, 1u);
    EXPECT_GT(s.quarantineBytes, 0u);
    EXPECT_EQ(s.orphanTmp, 1u);
}

TEST(SupervisorTest, PolicyFromFlagsValidatesItsRanges)
{
    const char *argv0[] = {"x"};
    runner::JobPolicy defaults =
        runner::JobPolicy::fromFlags(util::Flags(1, argv0));
    EXPECT_EQ(defaults.maxAttempts, 3u);
    EXPECT_EQ(defaults.deadlineMs, 0u);

    const char *bad[] = {"x", "--max-attempts", "0"};
    EXPECT_THROW(runner::JobPolicy::fromFlags(util::Flags(3, bad)),
                 std::invalid_argument);
    const char *negd[] = {"x", "--deadline-ms", "-5"};
    EXPECT_THROW(runner::JobPolicy::fromFlags(util::Flags(3, negd)),
                 std::invalid_argument);
}

// --- SweepJournal ---------------------------------------------------

TEST_F(StoreTest, JournalRecordsPoisonAcrossReopenAndDeduplicates)
{
    fs::path path = dir_ / "journals" / "t.journal";
    fs::create_directories(path.parent_path());
    {
        runner::SweepJournal j(path, "campaign-a", false);
        EXPECT_TRUE(j.poisoned().empty());
        j.recordPoison("key1", 3, "boom,\twith\nnoise");
        j.recordPoison("key1", 5, "duplicate ignored");
        j.recordPoison("key2", 2, "other");
    }
    runner::SweepJournal j(path, "campaign-a", true);
    ASSERT_EQ(j.poisoned().size(), 2u);
    const auto &rec = j.poisoned().at("key1");
    EXPECT_EQ(rec.attempts, 3u);
    EXPECT_EQ(rec.error, "boom  with noise")
        << "journaled error must be sanitized";
}

TEST_F(StoreTest, JournalRejectsADifferentCampaign)
{
    fs::create_directories(dir_);
    fs::path path = dir_ / "j.journal";
    { runner::SweepJournal j(path, "campaign-a", false); }
    EXPECT_THROW(runner::SweepJournal(path, "campaign-b", true),
                 runner::JournalError);
    // Without --resume the journal is simply recreated.
    runner::SweepJournal fresh(path, "campaign-b", false);
    EXPECT_TRUE(fresh.poisoned().empty());
}

TEST_F(StoreTest, JournalIgnoresATornFinalLine)
{
    fs::create_directories(dir_);
    fs::path path = dir_ / "j.journal";
    {
        runner::SweepJournal j(path, "c", false);
        j.recordPoison("whole", 1, "complete record");
    }
    {
        // A crash mid-append: the last line has no newline.
        std::ofstream os(path, std::ios::app | std::ios::binary);
        os << "poison\t9\ttorn-key\ttorn";
    }
    runner::SweepJournal j(path, "c", true);
    EXPECT_EQ(j.poisoned().size(), 1u);
    EXPECT_TRUE(j.poisoned().count("whole"));
    EXPECT_FALSE(j.poisoned().count("torn-key"));
}

// --- Supervised sweep + store, in process ---------------------------

TEST_F(StoreTest, SupervisedSweepReplaysFromStoreByteIdentically)
{
    auto grid =
        runner::SweepSpec::fromText("scheme=iq6464,mb_distr bench=gcc");
    runner::RunnerOptions opts;
    opts.warmupInsts = 100;
    opts.measureInsts = 500;
    opts.jobs = 1;

    std::vector<runner::SimResult> computed;
    {
        store::ResultStore st(dir_);
        runner::RunnerOptions o = opts;
        o.store = &st;
        runner::SweepRunner r(o);
        for (const auto &out : r.runAllSupervised(grid, nullptr)) {
            ASSERT_NE(out.result, nullptr);
            EXPECT_FALSE(out.fromStore);
            computed.push_back(*out.result);
        }
        EXPECT_EQ(st.misses(), grid.size());
    }
    {
        store::ResultStore st(dir_);
        runner::RunnerOptions o = opts;
        o.store = &st;
        runner::SweepRunner r(o);
        auto outcomes = r.runAllSupervised(grid, nullptr);
        ASSERT_EQ(outcomes.size(), computed.size());
        for (size_t i = 0; i < outcomes.size(); ++i) {
            ASSERT_NE(outcomes[i].result, nullptr);
            EXPECT_TRUE(outcomes[i].fromStore);
            expectEqualResults(*outcomes[i].result, computed[i]);
        }
        EXPECT_EQ(st.hits(), grid.size());
    }
}

TEST_F(StoreTest, SupervisedSweepSkipsJournaledPoisonOnResume)
{
    auto grid =
        runner::SweepSpec::fromText("scheme=iq6464 bench=gcc,swim");
    runner::RunnerOptions opts;
    opts.warmupInsts = 100;
    opts.measureInsts = 500;
    opts.jobs = 1;
    opts.policy = fastPolicy(2);

    fs::create_directories(dir_);
    fs::path jpath = dir_ / "j.journal";
    {
        fault::FaultPlan plan =
            fault::FaultPlan::parse("fail_job=swim:99");
        store::ResultStore st(dir_);
        runner::RunnerOptions o = opts;
        o.store = &st;
        o.faults = &plan;
        runner::SweepJournal journal(jpath, "c", false);
        runner::SweepRunner r(o);
        auto outcomes = r.runAllSupervised(grid, &journal);
        ASSERT_EQ(outcomes.size(), 2u);
        EXPECT_NE(outcomes[0].result, nullptr) << "gcc point succeeds";
        EXPECT_EQ(outcomes[1].result, nullptr) << "swim point poisons";
        EXPECT_EQ(outcomes[1].attempts, 2u);
        EXPECT_EQ(journal.poisoned().size(), 1u);
    }
    {
        // Resume without any fault plan: the poison job would succeed
        // now, but the journal says skip — determinism over optimism.
        store::ResultStore st(dir_);
        runner::RunnerOptions o = opts;
        o.store = &st;
        runner::SweepJournal journal(jpath, "c", true);
        runner::SweepRunner r(o);
        auto outcomes = r.runAllSupervised(grid, &journal);
        ASSERT_EQ(outcomes.size(), 2u);
        EXPECT_NE(outcomes[0].result, nullptr);
        EXPECT_TRUE(outcomes[0].fromStore);
        EXPECT_EQ(outcomes[1].result, nullptr);
        EXPECT_EQ(outcomes[1].attempts, 2u)
            << "journaled attempt count replays";
    }
}

} // namespace

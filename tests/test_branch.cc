/**
 * @file
 * Tests for src/branch: bimodal/gshare learning, tournament selection,
 * BTB associativity and replacement, RAS, and hybrid accuracy.
 */

#include <gtest/gtest.h>

#include "branch/predictors.hh"
#include "util/rng.hh"

namespace
{

using namespace diq;
using namespace diq::branch;

TEST(Bimodal, LearnsABiasedBranch)
{
    BimodalPredictor p(2048);
    uint64_t pc = 0x1000;
    for (int i = 0; i < 10; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 10; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneAnomaly)
{
    BimodalPredictor p(2048);
    uint64_t pc = 0x2000;
    for (int i = 0; i < 10; ++i)
        p.update(pc, true);
    p.update(pc, false); // single not-taken blip
    EXPECT_TRUE(p.predict(pc)) << "2-bit counter absorbs one anomaly";
}

TEST(Bimodal, EntriesRoundedToPow2)
{
    BimodalPredictor p(1000);
    EXPECT_EQ(p.numEntries(), 512u);
}

TEST(Gshare, LearnsHistoryCorrelatedPattern)
{
    // Alternating T/NT is unpredictable for bimodal but trivial for
    // gshare once the history distinguishes the two phases.
    GsharePredictor g(2048);
    uint64_t pc = 0x3000;
    uint64_t history = 0;
    auto push = [&](bool t) {
        history = ((history << 1) | (t ? 1 : 0)) & (g.numEntries() - 1);
    };
    for (int i = 0; i < 200; ++i) {
        bool outcome = (i % 2) == 0;
        g.update(pc, history, outcome);
        push(outcome);
    }
    int correct = 0;
    for (int i = 200; i < 300; ++i) {
        bool outcome = (i % 2) == 0;
        correct += g.predict(pc, history) == outcome ? 1 : 0;
        g.update(pc, history, outcome);
        push(outcome);
    }
    EXPECT_GT(correct, 95);
}

TEST(Btb, MissesWhenEmptyThenHits)
{
    Btb btb(2048, 4);
    uint64_t target = 0;
    EXPECT_FALSE(btb.lookup(0x4000, target));
    btb.update(0x4000, 0x5000);
    ASSERT_TRUE(btb.lookup(0x4000, target));
    EXPECT_EQ(target, 0x5000u);
}

TEST(Btb, UpdatesExistingEntry)
{
    Btb btb(2048, 4);
    btb.update(0x4000, 0x5000);
    btb.update(0x4000, 0x6000);
    uint64_t target = 0;
    ASSERT_TRUE(btb.lookup(0x4000, target));
    EXPECT_EQ(target, 0x6000u);
}

TEST(Btb, AssociativityHoldsConflictingBranches)
{
    Btb btb(64, 4); // 16 sets
    uint64_t set_stride = 16 * 4; // same set every 16 pcs (pc>>2 index)
    // Four branches mapping to one set must all fit.
    for (uint64_t i = 0; i < 4; ++i)
        btb.update(0x8000 + i * set_stride, 0x100 + i);
    for (uint64_t i = 0; i < 4; ++i) {
        uint64_t t = 0;
        EXPECT_TRUE(btb.lookup(0x8000 + i * set_stride, t));
        EXPECT_EQ(t, 0x100 + i);
    }
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(64, 4);
    uint64_t set_stride = 16 * 4;
    for (uint64_t i = 0; i < 4; ++i)
        btb.update(0x8000 + i * set_stride, i);
    // Touch entries 1..3, then insert a fifth: entry 0 must go.
    uint64_t t = 0;
    for (uint64_t i = 1; i < 4; ++i)
        btb.update(0x8000 + i * set_stride, i);
    btb.update(0x8000 + 4 * set_stride, 4);
    EXPECT_FALSE(btb.lookup(0x8000, t));
    EXPECT_TRUE(btb.lookup(0x8000 + 4 * set_stride, t));
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(16);
    EXPECT_TRUE(ras.empty());
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // underflow is benign
}

TEST(Ras, WrapsOnOverflow)
{
    ReturnAddressStack ras(4);
    for (uint64_t i = 1; i <= 6; ++i)
        ras.push(i);
    EXPECT_EQ(ras.size(), 4u);
    EXPECT_EQ(ras.pop(), 6u);
}

TEST(Hybrid, HighAccuracyOnBiasedStream)
{
    HybridPredictor h;
    util::Rng rng(7);
    uint64_t pc = 0x9000;
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        bool taken = rng.nextBool(0.9);
        correct += h.predictAndUpdate(pc, taken, pc + 64) ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.85);
    EXPECT_EQ(h.lookups(), static_cast<uint64_t>(n));
    EXPECT_EQ(h.mispredicts(), static_cast<uint64_t>(n - correct));
}

TEST(Hybrid, NearPerfectOnLoopBranch)
{
    HybridPredictor h;
    uint64_t pc = 0xa000;
    int correct = 0;
    const int trips = 500;
    const int inner = 16;
    for (int t = 0; t < trips; ++t)
        for (int i = 0; i < inner; ++i)
            correct += h.predictAndUpdate(pc, i + 1 < inner, 0xa100)
                ? 1
                : 0;
    // After warm-up only the loop exits can miss (gshare usually
    // learns those too with a 16-bit history).
    double acc = static_cast<double>(correct) / (trips * inner);
    EXPECT_GT(acc, 0.93);
}

TEST(Hybrid, TakenBranchNeedsBtbTarget)
{
    HybridPredictor h;
    uint64_t pc = 0xb000;
    // First encounter: even if direction guessed taken, the BTB has no
    // target, so the prediction counts as incorrect.
    bool first = h.predictAndUpdate(pc, true, 0xb100);
    EXPECT_FALSE(first);
    for (int i = 0; i < 8; ++i)
        h.predictAndUpdate(pc, true, 0xb100);
    EXPECT_TRUE(h.predictAndUpdate(pc, true, 0xb100));
}

TEST(Hybrid, SelectorPrefersGshareOnPatterns)
{
    HybridPredictor h;
    uint64_t pc = 0xc000;
    // Alternating branch: bimodal oscillates, gshare learns; accuracy
    // must end up high, proving the selector migrated.
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        correct += h.predictAndUpdate(pc, i % 2 == 0, 0xc100) ? 1 : 0;
    EXPECT_GT(static_cast<double>(correct) / n, 0.9);
}

TEST(Hybrid, HistoryAdvances)
{
    HybridPredictor h;
    uint64_t h0 = h.history();
    h.predictAndUpdate(0xd000, true, 0xd100);
    uint64_t h1 = h.history();
    EXPECT_EQ(h1 & 1, 1u);
    h.predictAndUpdate(0xd000, false, 0xd100);
    EXPECT_EQ(h.history() & 1, 0u);
    EXPECT_NE(h0, h1);
}

} // namespace

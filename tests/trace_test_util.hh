/**
 * @file
 * Shared helpers for the trace-layer test suites (test_trace,
 * test_file_trace, test_replay, test_scenarios): process-unique temp
 * paths, workload sampling, and the field-by-field MicroOp
 * comparator. One copy, so a new MicroOp field weakens no suite's
 * round-trip check silently.
 */

#ifndef DIQ_TESTS_TRACE_TEST_UTIL_HH
#define DIQ_TESTS_TRACE_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "trace/isa.hh"
#include "trace/spec2000.hh"

namespace diq::trace::test
{

/**
 * Process-unique temp path: ctest runs every test of a binary as its
 * own concurrent process, and sibling build trees (Release/Debug/
 * sanitizer) share /tmp — fixed names would race.
 */
inline std::string
tempPath(const std::string &file)
{
    return ::testing::TempDir() + std::to_string(::getpid()) + "_" +
           file;
}

/** First `n` ops of a named SPEC-like workload. */
inline std::vector<MicroOp>
sampleOps(const std::string &bench, size_t n)
{
    auto w = makeSpecWorkload(bench);
    std::vector<MicroOp> ops(n);
    for (auto &op : ops)
        EXPECT_TRUE(w->next(op));
    return ops;
}

/** ASSERT that two micro-ops agree on every field. */
inline void
expectSameOp(const MicroOp &a, const MicroOp &b, size_t i)
{
    ASSERT_EQ(a.pc, b.pc) << "op " << i;
    ASSERT_EQ(a.op, b.op) << "op " << i;
    ASSERT_EQ(a.src1, b.src1) << "op " << i;
    ASSERT_EQ(a.src2, b.src2) << "op " << i;
    ASSERT_EQ(a.dest, b.dest) << "op " << i;
    ASSERT_EQ(a.memAddr, b.memAddr) << "op " << i;
    ASSERT_EQ(a.memSize, b.memSize) << "op " << i;
    ASSERT_EQ(a.taken, b.taken) << "op " << i;
    ASSERT_EQ(a.target, b.target) << "op " << i;
}

} // namespace diq::trace::test

#endif // DIQ_TESTS_TRACE_TEST_UTIL_HH

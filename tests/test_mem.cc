/**
 * @file
 * Tests for src/mem: set-associative cache behaviour (hits, LRU,
 * write-back) and hierarchy latencies per Table 1.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace
{

using namespace diq::mem;

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 16B lines = 128 bytes.
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = 128;
    c.assoc = 2;
    c.lineBytes = 16;
    c.hitLatency = 2;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x10f, false).hit); // same line
    EXPECT_FALSE(c.access(0x110, false).hit); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, GeometryDerived)
{
    Cache c(tinyCache());
    EXPECT_EQ(c.numSets(), 4u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(tinyCache());
    // Three lines mapping to set 0 (stride = sets*lineBytes = 64).
    c.access(0x000, false);
    c.access(0x040, false);
    EXPECT_TRUE(c.access(0x000, false).hit); // 0x000 now MRU
    c.access(0x080, false);                  // evicts LRU = 0x040
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x040));
    EXPECT_TRUE(c.probe(0x080));
}

TEST(Cache, WritebackOnlyForDirtyVictims)
{
    Cache c(tinyCache());
    c.access(0x000, true); // dirty
    c.access(0x040, false);
    AccessResult r = c.access(0x080, false); // evicts dirty 0x000
    EXPECT_TRUE(r.writebackVictim);
    EXPECT_EQ(c.writebacks(), 1u);

    c.reset();
    c.access(0x000, false); // clean
    c.access(0x040, false);
    r = c.access(0x080, false);
    EXPECT_FALSE(r.writebackVictim);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(tinyCache());
    c.access(0x000, false);
    uint64_t before = c.accesses();
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x040));
    EXPECT_EQ(c.accesses(), before);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tinyCache());
    c.access(0x000, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, MissRate)
{
    Cache c(tinyCache());
    c.access(0x000, false);
    c.access(0x000, false);
    c.access(0x000, false);
    c.access(0x000, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

// --- MemoryHierarchy ----------------------------------------------------------

TEST(Hierarchy, Table1Latencies)
{
    MemoryHierarchy m;
    // Cold: L1 miss (2) + L2 miss (10) + memory for a 64B line
    // (100 + 7*2 = 114) = 126.
    EXPECT_EQ(m.loadLatency(0x100000), 2u + 10u + 114u);
    // Warm: L1 hit.
    EXPECT_EQ(m.loadLatency(0x100000), 2u);
}

TEST(Hierarchy, L2HitCosts12)
{
    MemoryHierarchy m;
    m.loadLatency(0x200000); // fill both levels
    // Evict from L1 by filling its set (L1D: 32K/4w/32B -> 256 sets,
    // set stride 8K); L2 is much bigger, so these stay resident there.
    for (uint64_t i = 1; i <= 4; ++i)
        m.loadLatency(0x200000 + i * 8192);
    EXPECT_EQ(m.loadLatency(0x200000), 2u + 10u);
}

TEST(Hierarchy, ChunkedMemoryLatency)
{
    MemoryHierarchy m;
    EXPECT_EQ(m.memoryLatency(8), 100u);
    EXPECT_EQ(m.memoryLatency(64), 100u + 7 * 2u);
    EXPECT_EQ(m.memoryLatency(1), 100u);
}

TEST(Hierarchy, FetchUsesICache)
{
    MemoryHierarchy m;
    unsigned cold = m.fetchLatency(0x400000);
    EXPECT_GT(cold, 100u);
    EXPECT_EQ(m.fetchLatency(0x400000), 1u); // L1I hit latency
    EXPECT_EQ(m.l1i().accesses(), 2u);
    EXPECT_EQ(m.l1d().accesses(), 0u);
}

TEST(Hierarchy, StoresAllocateDirtyLines)
{
    MemoryHierarchy m;
    m.storeLatency(0x300000);
    EXPECT_TRUE(m.l1d().probe(0x300000));
    EXPECT_EQ(m.storeLatency(0x300000), 2u); // write hit
}

TEST(Hierarchy, InstructionAndDataShareL2)
{
    MemoryHierarchy m;
    m.loadLatency(0x500000);
    // Same line fetched as instructions: L1I misses but L2 hits.
    EXPECT_EQ(m.fetchLatency(0x500000), 1u + 10u);
}

TEST(Hierarchy, ResetRestoresColdState)
{
    MemoryHierarchy m;
    m.loadLatency(0x600000);
    m.reset();
    EXPECT_EQ(m.loadLatency(0x600000), 126u);
}

} // namespace

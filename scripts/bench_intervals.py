#!/usr/bin/env python3
"""Measure interval-simulation speedups and warmup-seeding error.

Produces BENCH_10.json (run from the repo root):

    python3 scripts/bench_intervals.py --diq build/diq --out BENCH_10.json

Three measurements (docs/CHECKPOINTS.md explains the methodology):

 1. Replay speedup: monolithic wall time vs `--intervals N` exact-mode
    replay from a warm snapshot set, for N in {1, 2, 4, 8}. Replay
    skips the warm-up region entirely (snapshots capture the warmed
    machine), so it wins even single-threaded; on multi-core hosts the
    intervals additionally run concurrently (--jobs).
 2. Warmup-mode speedup: the same run seeded by functional
    fast-forward instead of snapshots — no serial pass at all.
 3. Warmup-seeding error: per scheme preset, the relative IPC error of
    warmup mode vs the monolithic run (IPC recomputed from the
    committed/cycles columns for full precision).
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

SCHEMES = ["iq6464", "if_distr", "latfifo_8x8_8x16", "mb_distr"]


def run_diq(diq, args, env_extra=None):
    env = dict(os.environ)
    env.pop("DIQ_INSTS", None)
    env.pop("DIQ_WARMUP", None)
    if env_extra:
        env.update(env_extra)
    t0 = time.monotonic()
    proc = subprocess.run([diq] + args, capture_output=True, text=True,
                          env=env, check=True)
    return time.monotonic() - t0, proc.stdout


def parse_row(stdout):
    """IPC from the result row's committed/cycles (full precision)."""
    for line in stdout.splitlines():
        m = re.match(r"\S+\s+\S+\s+[\d.]+\s+(\d+)\s+(\d+)", line)
        if m:
            cycles, committed = int(m.group(1)), int(m.group(2))
            return committed / cycles, cycles, committed
    raise RuntimeError("no result row in output:\n" + stdout)


def timed_best(diq, args, repeats, env_extra=None):
    best, out = None, None
    for _ in range(repeats):
        t, stdout = run_diq(diq, args, env_extra)
        if best is None or t < best:
            best, out = t, stdout
    return best, out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--diq", default="build/diq")
    ap.add_argument("--out", default="BENCH_10.json")
    ap.add_argument("--warmup", type=int, default=4_000_000)
    ap.add_argument("--insts", type=int, default=4_000_000)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args()

    spec = ["mb_distr", "bench=swim",
            f"warmup_insts={args.warmup}",
            f"measure_insts={args.insts}"]
    jobs = os.cpu_count() or 1

    mono_t, mono_out = timed_best(args.diq, ["run"] + spec,
                                  args.repeats)
    mono_ipc, _, _ = parse_row(mono_out)

    replay = []
    for n in (1, 2, 4, 8):
        ckpt = tempfile.mkdtemp(prefix="diq-bench-ckpt-")
        try:
            common = ["run"] + spec + [f"--intervals={n}",
                                       f"--jobs={jobs}",
                                       f"--ckpt-dir={ckpt}"]
            serial_t, _ = run_diq(args.diq, common)
            replay_t, out = timed_best(args.diq, common, args.repeats)
            ipc, _, _ = parse_row(out)
            assert abs(ipc - mono_ipc) < 1e-12, "exact mode drifted"
            replay.append({
                "intervals": n,
                "serial_pass_sec": round(serial_t, 3),
                "replay_sec": round(replay_t, 3),
                "speedup_vs_monolithic": round(mono_t / replay_t, 2),
            })
        finally:
            shutil.rmtree(ckpt, ignore_errors=True)

    warm_t, warm_out = timed_best(
        args.diq, ["run"] + spec + ["--intervals=8", f"--jobs={jobs}",
                                    "--interval-mode=warmup"],
        args.repeats)
    warm_ipc, _, _ = parse_row(warm_out)

    errors = []
    for scheme in SCHEMES:
        for bench in ("swim", "fuzz:7"):
            s = [scheme, f"bench={bench}", "warmup_insts=100000",
                 "measure_insts=400000"]
            _, m_out = run_diq(args.diq, ["run"] + s)
            _, w_out = run_diq(args.diq, ["run"] + s +
                               ["--intervals=8", "--jobs=1",
                                "--interval-mode=warmup"])
            m_ipc, _, _ = parse_row(m_out)
            w_ipc, _, _ = parse_row(w_out)
            errors.append({
                "scheme": scheme,
                "bench": bench,
                "ipc_monolithic": round(m_ipc, 6),
                "ipc_warmup_seeded": round(w_ipc, 6),
                "rel_error_pct": round(abs(w_ipc - m_ipc) / m_ipc * 100,
                                       4),
            })

    doc = {
        "pr": 10,
        "title": "Checkpointed simulation state + parallel interval "
                 "simulation of one trace",
        "binary": "diq run",
        "units": "wall-clock seconds (best of repeats)",
        "method": (
            f"Release build, {jobs} core(s); "
            f"mb_distr bench=swim warmup_insts={args.warmup} "
            f"measure_insts={args.insts}; best of {args.repeats}. "
            "Replay rows time `diq run --intervals N` against a warm "
            "snapshot set (the serial saving pass, timed once, "
            "populates it); replay skips the warm-up region because "
            "snapshots capture the warmed machine. On a single-core "
            "host the jobs curve is flat — intervals still divide the "
            "measured region, but run sequentially; the per-interval "
            "wall-clock division is what multi-core hosts parallelize. "
            "Warmup-seeding error is measured per scheme as relative "
            "IPC drift vs the monolithic run (interval_warmup=2000, "
            "N=8); exact mode is asserted drift-free in-run."),
        "monolithic_sec": round(mono_t, 3),
        "monolithic_ipc": round(mono_ipc, 6),
        "exact_replay": replay,
        "warmup_mode": {
            "intervals": 8,
            "sec": round(warm_t, 3),
            "speedup_vs_monolithic": round(mono_t / warm_t, 2),
            "ipc": round(warm_ipc, 6),
            "rel_error_pct": round(
                abs(warm_ipc - mono_ipc) / mono_ipc * 100, 4),
        },
        "warmup_error_by_scheme": errors,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(json.dumps(doc, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Docs lint: broken intra-repo links + undocumented CLI surface.

Usage (from the repo root, after a build):

    python3 scripts/check_docs.py --diq build/diq

Two checks, both hard CI failures:

 1. Every relative markdown link in the repo's .md files must resolve
    to an existing file, and a `#fragment` pointing into a markdown
    file must match one of its headings (GitHub-style slugs).
 2. Every `diq` CLI verb (parsed from `diq help`) and every spec key
    (parsed from `diq list keys`) must be mentioned in README.md or
    docs/ARCHITECTURE.md — new surface area ships documented or not
    at all.

Run without --diq (e.g. pre-build) to get the link check alone.
"""

import argparse
import os
import re
import subprocess
import sys

MD_FILES = [
    "README.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/RESULTS.md",
    "docs/CHECKPOINTS.md",
    "docs/OPERATIONS.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[*`]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path):
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    slugs = set()
    counts = {}
    for heading in HEADING_RE.findall(content):
        slug = github_slug(heading)
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(root, errors):
    for md in MD_FILES:
        path = os.path.join(root, md)
        if not os.path.exists(path):
            errors.append(f"{md}: listed in check_docs.py but missing")
            continue
        with open(path, encoding="utf-8") as f:
            content = f.read()
        # Ignore links inside fenced code blocks.
        content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
        for target in LINK_RE.findall(content):
            if re.match(r"^[a-z]+:", target):  # http:, mailto:, ...
                continue
            file_part, _, frag = target.partition("#")
            if file_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(dest):
                    errors.append(f"{md}: broken link -> {target}")
                    continue
            else:
                dest = path
            if frag and dest.endswith(".md") and os.path.exists(dest):
                if frag not in anchors_of(dest):
                    errors.append(
                        f"{md}: dead anchor -> {target} "
                        f"(no heading slugs to '{frag}')")


def documented_text(root):
    text = ""
    for md in ("README.md", "docs/ARCHITECTURE.md"):
        with open(os.path.join(root, md), encoding="utf-8") as f:
            text += f.read()
    return text


def check_cli_surface(root, diq, errors):
    docs = documented_text(root)

    help_out = subprocess.run([diq, "help"], capture_output=True,
                              text=True).stdout
    verbs = re.findall(r"^  ([a-z]+)\b", help_out, re.MULTILINE)
    if not verbs:
        errors.append("could not parse any verbs from `diq help`")
    for verb in sorted(set(verbs)):
        if not re.search(r"\b" + re.escape(verb) + r"\b", docs):
            errors.append(
                f"CLI verb '{verb}' (diq help) is not mentioned in "
                "README.md or docs/ARCHITECTURE.md")

    keys_out = subprocess.run([diq, "list", "keys"],
                              capture_output=True, text=True).stdout
    keys = [
        line.split()[0]
        for line in keys_out.splitlines()
        if line and not line.startswith(("-", "spec", "key"))
        and re.match(r"^[a-z][a-z0-9_]*\s", line)
    ]
    if not keys:
        errors.append("could not parse any keys from `diq list keys`")
    for key in keys:
        if not re.search(r"\b" + re.escape(key) + r"\b", docs):
            errors.append(
                f"spec key '{key}' (diq list keys) is not mentioned "
                "in README.md or docs/ARCHITECTURE.md")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--diq", default=None,
                    help="path to the diq binary (enables CLI checks)")
    ap.add_argument("--root", default=".")
    args = ap.parse_args()

    errors = []
    check_links(args.root, errors)
    if args.diq:
        check_cli_surface(args.root, args.diq, errors)

    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    n = len(MD_FILES)
    print(f"check_docs: OK ({n} files, links"
          f"{' + CLI surface' if args.diq else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fail CI when a microbench regresses >10% vs the committed baseline.

Usage: check_perf_regression.py BASELINE.json RUN.json [RUN2.json ...]

BASELINE.json is a committed BENCH_*.json (results[].name /
items_per_sec_after); RUN*.json are Google Benchmark --benchmark_format=json
outputs. With several run files, the best throughput per benchmark across
all of them is used, which shaves single-run scheduler noise.

Shared CI runners differ in absolute speed, so raw items/s cannot be
compared against a baseline recorded elsewhere. BM_WorkloadGeneration
exercises only the trace generator — none of the issue-queue structures
the other benchmarks stress — so it tracks raw host speed. Dividing every
benchmark by it yields a machine-independent relative throughput, and the
gate compares those relatives: fail when any benchmark's relative
throughput drops more than TOLERANCE below the baseline's.

A missing or malformed BASELINE is a warning, not a failure: the gate
exists to catch regressions against a known-good record, and when that
record is absent (fresh branch, renamed file, truncated checkout) the
right behaviour is to say so and pass rather than block the build on
infrastructure. Malformed RUN files still fail — they mean the bench
run itself broke.
"""

import json
import sys

TOLERANCE = 0.10
NORMALIZER = "BM_WorkloadGeneration"


def best_throughputs(paths):
    """Best items_per_second per benchmark name across the run files."""
    best = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for b in doc.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue  # skip aggregate rows (mean/median/stddev)
            name = b.get("name", "").split("/")[0]
            ips = b.get("items_per_second")
            if not name or ips is None:
                continue
            if ips > best.get(name, 0.0):
                best[name] = ips
    return best


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip().splitlines()[2])
        return 2

    try:
        with open(argv[1]) as f:
            baseline_doc = json.load(f)
        baseline = {r["name"]: float(r["items_per_sec_after"])
                    for r in baseline_doc["results"]}
    except (OSError, json.JSONDecodeError, KeyError, TypeError,
            ValueError) as e:
        print(f"warning: baseline {argv[1]} unusable "
              f"({type(e).__name__}: {e}); skipping perf gate")
        return 0
    if NORMALIZER not in baseline:
        print(f"warning: baseline {argv[1]} has no {NORMALIZER} entry; "
              f"skipping perf gate")
        return 0

    run = best_throughputs(argv[2:])
    if NORMALIZER not in run:
        print(f"error: run has no {NORMALIZER} entry")
        return 2

    failed = False
    print(f"{'benchmark':<28} {'base rel':>10} {'run rel':>10} {'ratio':>7}")
    for name in sorted(baseline):
        if name == NORMALIZER:
            continue
        if name not in run:
            print(f"{name:<28} missing from run output  REGRESSED")
            failed = True
            continue
        base_rel = baseline[name] / baseline[NORMALIZER]
        run_rel = run[name] / run[NORMALIZER]
        ratio = run_rel / base_rel
        verdict = "" if ratio >= 1.0 - TOLERANCE else "  REGRESSED"
        failed = failed or bool(verdict)
        print(f"{name:<28} {base_rel:>10.4f} {run_rel:>10.4f} "
              f"{ratio:>7.3f}{verdict}")

    if failed:
        print(f"FAIL: normalized throughput regressed more than "
              f"{TOLERANCE:.0%} vs {argv[1]}")
        return 1
    print(f"OK: every benchmark within {TOLERANCE:.0%} of {argv[1]} "
          f"(normalized)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
